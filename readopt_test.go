package readopt

import (
	"path/filepath"
	"strings"
	"testing"
)

func TestNewSchema(t *testing.T) {
	s, err := NewSchema("SALES", []Column{
		{Name: "SALE_ID", Type: Int32, Compression: FORDelta, Bits: 8},
		{Name: "REGION", Type: Text(10), Compression: Dict, Bits: 3},
		{Name: "AMOUNT", Type: Int32},
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "SALES" || s.TupleBytes() != 18 {
		t.Errorf("schema = %s/%d bytes", s.Name(), s.TupleBytes())
	}
	if cols := s.Columns(); len(cols) != 3 || cols[1] != "REGION" {
		t.Errorf("Columns = %v", cols)
	}
	if !strings.Contains(s.String(), "dict, 3 bits") {
		t.Errorf("String missing compression info:\n%s", s)
	}
}

func TestNewSchemaErrors(t *testing.T) {
	cases := [][]Column{
		{{Name: "A", Type: "float64"}},
		{{Name: "A", Type: "text(x)"}},
		{{Name: "A", Type: "text(0)"}},
		{{Name: "A", Type: Int32, Compression: "zip"}},
		{{Name: "A", Type: Int32, Compression: BitPack, Bits: 99}},
	}
	for i, cols := range cases {
		if _, err := NewSchema("T", cols); err == nil {
			t.Errorf("case %d: invalid schema accepted", i)
		}
	}
}

func TestPaperSchemas(t *testing.T) {
	if Lineitem().TupleBytes() != 150 || Lineitem().StoredTupleBytes() != 152 {
		t.Error("LINEITEM widths wrong")
	}
	if Orders().TupleBytes() != 32 || Orders().StoredTupleBytes() != 32 {
		t.Error("ORDERS widths wrong")
	}
	if LineitemZ().StoredTupleBytes() != 52 || OrdersZ().StoredTupleBytes() != 12 {
		t.Error("compressed widths wrong")
	}
}

func loadOrders(t *testing.T, layout Layout, n int64) *Table {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "orders")
	tbl, err := GenerateTPCH(dir, Orders(), layout, n, 7, LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestGenerateAndQuery(t *testing.T) {
	for _, layout := range []Layout{RowLayout, ColumnLayout} {
		t.Run(string(layout), func(t *testing.T) {
			tbl := loadOrders(t, layout, 5000)
			if tbl.Rows() != 5000 || tbl.Layout() != layout {
				t.Fatalf("table state: %d rows, %s", tbl.Rows(), tbl.Layout())
			}
			th, err := tbl.SelectivityThreshold(0.10)
			if err != nil {
				t.Fatal(err)
			}
			rows, err := tbl.Query(Query{
				Select: []string{"O_ORDERKEY", "O_TOTALPRICE", "O_ORDERSTATUS"},
				Where:  []Cond{{Column: "O_ORDERDATE", Op: "<", Value: th}},
			})
			if err != nil {
				t.Fatal(err)
			}
			defer rows.Close()
			if cols := rows.Columns(); cols[0] != "O_ORDERKEY" || cols[2] != "O_ORDERSTATUS" {
				t.Errorf("result columns = %v", cols)
			}
			n := 0
			prevKey := int32(-1)
			for rows.Next() {
				var key int32
				var price int
				var status string
				if err := rows.Scan(&key, &price, &status); err != nil {
					t.Fatal(err)
				}
				if key <= prevKey {
					t.Fatalf("order keys not increasing: %d after %d", key, prevKey)
				}
				prevKey = key
				if price < 1000 || len(status) != 1 {
					t.Fatalf("implausible row: price=%d status=%q", price, status)
				}
				n++
			}
			if err := rows.Err(); err != nil {
				t.Fatal(err)
			}
			if n < 300 || n > 700 {
				t.Errorf("10%% selectivity returned %d of 5000 rows", n)
			}
			if rows.Stats().IOBytes == 0 {
				t.Error("query reported no I/O")
			}
		})
	}
}

func TestQueryAggregation(t *testing.T) {
	tbl := loadOrders(t, ColumnLayout, 5000)
	rows, err := tbl.Query(Query{
		GroupBy: []string{"O_ORDERSTATUS"},
		Aggs:    []Agg{{Func: "count"}, {Func: "sum", Column: "O_TOTALPRICE"}, {Func: "avg", Column: "O_TOTALPRICE"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	total := 0
	groups := 0
	for rows.Next() {
		var status string
		var cnt, sum, avg int
		if err := rows.Scan(&status, &cnt, &sum, &avg); err != nil {
			t.Fatal(err)
		}
		if cnt <= 0 || avg <= 0 {
			t.Fatalf("bad group %q: cnt=%d avg=%d", status, cnt, avg)
		}
		total += cnt
		groups++
	}
	if groups != 3 {
		t.Errorf("got %d status groups, want 3", groups)
	}
	if total != 5000 {
		t.Errorf("group counts sum to %d, want 5000", total)
	}
}

func TestQueryLimitAndBareCount(t *testing.T) {
	tbl := loadOrders(t, RowLayout, 2000)
	rows, err := tbl.Query(Query{Select: []string{"O_ORDERKEY"}, Limit: 7})
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for rows.Next() {
		n++
	}
	rows.Close()
	if n != 7 {
		t.Errorf("limit returned %d rows", n)
	}
	cnt, err := tbl.Query(Query{Aggs: []Agg{{Func: "count"}}})
	if err != nil {
		t.Fatal(err)
	}
	defer cnt.Close()
	if !cnt.Next() {
		t.Fatal("count returned no rows")
	}
	var c int
	if err := cnt.Scan(&c); err != nil {
		t.Fatal(err)
	}
	if c != 2000 {
		t.Errorf("count(*) = %d, want 2000", c)
	}
}

func TestQueryErrors(t *testing.T) {
	tbl := loadOrders(t, RowLayout, 100)
	cases := []Query{
		{},
		{Select: []string{"NOPE"}},
		{Select: []string{"O_ORDERKEY"}, Where: []Cond{{Column: "O_ORDERKEY", Op: "~", Value: 1}}},
		{Select: []string{"O_ORDERKEY"}, Where: []Cond{{Column: "O_ORDERKEY", Op: "<", Value: 3.14}}},
		{Aggs: []Agg{{Func: "median", Column: "O_TOTALPRICE"}}},
	}
	for i, q := range cases {
		if _, err := tbl.Query(q); err == nil {
			t.Errorf("case %d: invalid query accepted", i)
		}
	}
}

func TestLoaderCustomSchema(t *testing.T) {
	s, err := NewSchema("EVENTS", []Column{
		{Name: "TS", Type: Int32, Compression: FORDelta, Bits: 16},
		{Name: "KIND", Type: Text(8), Compression: Dict, Bits: 2},
		{Name: "VALUE", Type: Int32},
	})
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "events")
	l, err := NewLoader(dir, s, ColumnLayout, LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		kind := "click"
		if i%3 == 0 {
			kind = "view"
		}
		if err := l.Append(1000+i*2, kind, i*i%997); err != nil {
			t.Fatal(err)
		}
	}
	tbl, err := l.Close()
	if err != nil {
		t.Fatal(err)
	}
	rows, err := tbl.Query(Query{
		Select:  []string{"KIND"},
		GroupBy: []string{"KIND"},
		Aggs:    []Agg{{Func: "count"}, {Func: "max", Column: "TS"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	counts := map[string]int{}
	for rows.Next() {
		var kind string
		var cnt, maxTS int
		if err := rows.Scan(&kind, &cnt, &maxTS); err != nil {
			t.Fatal(err)
		}
		counts[kind] = cnt
		if maxTS < 1000 {
			t.Errorf("max TS = %d", maxTS)
		}
	}
	if counts["view"] != 334 || counts["click"] != 666 {
		t.Errorf("group counts = %v", counts)
	}
}

func TestLoaderTypeErrors(t *testing.T) {
	s, _ := NewSchema("T", []Column{{Name: "A", Type: Int32}, {Name: "B", Type: Text(3)}})
	l, err := NewLoader(filepath.Join(t.TempDir(), "t"), s, RowLayout, LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(1); err == nil {
		t.Error("wrong arity accepted")
	}
	if err := l.Append("x", "y"); err == nil {
		t.Error("text into int accepted")
	}
	if err := l.Append(1, 2); err == nil {
		t.Error("int into text accepted")
	}
	if err := l.Append(1, "toolong"); err == nil {
		t.Error("over-long text accepted")
	}
	if err := l.Append(1, "ok"); err != nil {
		t.Error(err)
	}
	if _, err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestWriteBufferMerge(t *testing.T) {
	base := t.TempDir()
	tbl, err := GenerateTPCH(filepath.Join(base, "orders"), Orders(), ColumnLayout, 2000, 3, LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	wb := NewWriteBuffer(Orders())
	if err := wb.Insert(500, 1234, 42, "F", "2-HIGH", 999, 0); err != nil {
		t.Fatal(err)
	}
	if err := wb.Insert(600, 2345, 43, "O", "5-LOW", 888, 0); err != nil {
		t.Fatal(err)
	}
	if wb.Len() != 2 {
		t.Fatalf("Len = %d", wb.Len())
	}
	merged, err := wb.MergeInto(tbl, filepath.Join(base, "merged"), "O_ORDERKEY")
	if err != nil {
		t.Fatal(err)
	}
	if merged.Rows() != 2002 {
		t.Errorf("merged rows = %d", merged.Rows())
	}
	if wb.Len() != 0 {
		t.Error("buffer not drained")
	}
	rows, err := merged.Query(Query{
		Select: []string{"O_ORDERKEY", "O_TOTALPRICE"},
		Where:  []Cond{{Column: "O_TOTALPRICE", Op: "=", Value: 999}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	if !rows.Next() {
		t.Fatal("inserted row not found after merge")
	}
	var key, price int
	if err := rows.Scan(&key, &price); err != nil {
		t.Fatal(err)
	}
	if key != 1234 {
		t.Errorf("merged row key = %d", key)
	}
}

func TestJoinTables(t *testing.T) {
	base := t.TempDir()
	// The generators share order-key structure when seeded identically:
	// join LINEITEM to ORDERS on the key and aggregate revenue by ship
	// mode — a warehouse-shaped query.
	li, err := GenerateTPCH(filepath.Join(base, "li"), Lineitem(), ColumnLayout, 4000, 3, LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ord, err := GenerateTPCH(filepath.Join(base, "ord"), Orders(), ColumnLayout, 4000, 3, LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rows, err := JoinTables(
		li, Query{Select: []string{"L_ORDERKEY", "L_EXTENDEDPRICE", "L_SHIPMODE"}},
		ord, Query{Select: []string{"O_ORDERKEY", "O_ORDERSTATUS"}},
		JoinSpec{
			LeftKey: "L_ORDERKEY", RightKey: "O_ORDERKEY",
			GroupBy: []string{"L_SHIPMODE"},
			Aggs:    []Agg{{Func: "count"}, {Func: "avg", Column: "L_EXTENDEDPRICE"}},
		})
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	modes := 0
	joined := 0
	for rows.Next() {
		var mode string
		var cnt, avg int
		if err := rows.Scan(&mode, &cnt, &avg); err != nil {
			t.Fatal(err)
		}
		if cnt <= 0 || avg <= 0 {
			t.Fatalf("bad group %q", mode)
		}
		modes++
		joined += cnt
	}
	if modes != 7 {
		t.Errorf("got %d ship modes, want 7", modes)
	}
	if joined == 0 {
		t.Error("join produced no rows")
	}
	// Invalid specs.
	if _, err := JoinTables(li, Query{Select: []string{"L_ORDERKEY"}, Limit: 5}, ord, Query{Select: []string{"O_ORDERKEY"}}, JoinSpec{LeftKey: "L_ORDERKEY", RightKey: "O_ORDERKEY"}); err == nil {
		t.Error("join input with limit accepted")
	}
	if _, err := JoinTables(li, Query{Select: []string{"L_ORDERKEY"}}, ord, Query{Select: []string{"O_ORDERKEY"}}, JoinSpec{LeftKey: "NOPE", RightKey: "O_ORDERKEY"}); err == nil {
		t.Error("unknown join key accepted")
	}
}

func TestPredictSpeedup(t *testing.T) {
	hw := PaperHardware()
	if cpdb := hw.CPDB(); cpdb < 17 || cpdb > 19 {
		t.Errorf("paper hardware cpdb = %.1f, want about 18", cpdb)
	}
	p, err := PredictSpeedup(hw, WorkloadSpec{
		TupleBytes: 32, NumColumns: 16, ProjectedFraction: 0.5, Selectivity: 0.10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if p.Speedup <= 1 {
		t.Errorf("wide tuples on paper hardware: speedup = %.2f, want > 1", p.Speedup)
	}
	if p.RowRate <= 0 || p.ColumnRate <= 0 {
		t.Error("rates must be positive")
	}
	if _, err := PredictSpeedup(hw, WorkloadSpec{}); err == nil {
		t.Error("empty workload accepted")
	}
}

func TestIndexScanBreakEvenFacade(t *testing.T) {
	got := IndexScanBreakEven(5_000_000, 300, 128) // 5ms
	if got > 0.0001 {
		t.Errorf("break-even = %v, want below 0.01%%", got)
	}
}

func TestOpenTableErrors(t *testing.T) {
	if _, err := OpenTable(t.TempDir()); err == nil {
		t.Error("empty directory accepted")
	}
	if _, err := GenerateTPCH(t.TempDir(), Orders(), Layout("diagonal"), 10, 1, LoadOptions{}); err == nil {
		t.Error("bogus layout accepted")
	}
}

func TestQueryOrderBy(t *testing.T) {
	tbl := loadOrders(t, ColumnLayout, 3000)
	// Top five statuses by count: an order-by over aggregate output.
	rows, err := tbl.Query(Query{
		GroupBy: []string{"O_ORDERPRIORITY"},
		Aggs:    []Agg{{Func: "count"}},
		OrderBy: []Order{{Column: "COUNT(*)", Desc: true}},
		Limit:   3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	prev := int(1 << 30)
	n := 0
	for rows.Next() {
		var prio string
		var cnt int
		if err := rows.Scan(&prio, &cnt); err != nil {
			t.Fatal(err)
		}
		if cnt > prev {
			t.Fatalf("counts not descending: %d after %d", cnt, prev)
		}
		prev = cnt
		n++
	}
	if n != 3 {
		t.Errorf("limit 3 returned %d rows", n)
	}
	// Plain order-by on a selected column, descending.
	rows2, err := tbl.Query(Query{
		Select:  []string{"O_TOTALPRICE"},
		OrderBy: []Order{{Column: "O_TOTALPRICE", Desc: true}},
		Limit:   10,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rows2.Close()
	prev = 1 << 30
	for rows2.Next() {
		var price int
		if err := rows2.Scan(&price); err != nil {
			t.Fatal(err)
		}
		if price > prev {
			t.Fatalf("prices not descending")
		}
		prev = price
	}
	// Unknown order-by column errors.
	if _, err := tbl.Query(Query{Select: []string{"O_ORDERKEY"}, OrderBy: []Order{{Column: "NOPE"}}}); err == nil {
		t.Error("unknown order-by column accepted")
	}
}
