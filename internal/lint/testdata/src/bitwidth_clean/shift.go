// Package bitio is the clean bitwidth fixture: every shift width is
// validated the way the packing kernels validate theirs.
package bitio

// assertWidth stands in for the readoptdebug assertion; the analyzer
// matches it by name.
func assertWidth(int) {}

const codeBits = 12

func constShift() uint64 { return 1 << codeBits }

func maskOf(bits int) uint64 {
	if bits < 1 || bits > 63 {
		panic("bitio: code width out of range")
	}
	return uint64(1)<<bits - 1
}

func packLoop(words []uint64, width int) uint64 {
	assertWidth(width)
	var acc uint64
	for _, w := range words {
		acc |= w & (1<<width - 1)
	}
	return acc
}
