package shard

// The coordinator's merge layer. Aggregations fold shard accumulator
// states through exec.AggMerge — the identical operator a
// morsel-parallel plan uses for its own partials — over a synthetic
// input schema reconstructed from the query, so the distributed result
// inherits the engine's exact arithmetic (int32 truncation, truncating
// AVG) and its sorted-group emission order. Row queries concatenate in
// partition order, which is scan order; ORDER BY re-sorts (and LIMIT
// re-tops) at the coordinator through plan.Post, the same post-pass a
// shared-scan batch uses.

import (
	"encoding/base64"
	"fmt"
	"strconv"
	"strings"

	"github.com/readoptdb/readopt"
	"github.com/readoptdb/readopt/internal/cpumodel"
	"github.com/readoptdb/readopt/internal/exec"
	"github.com/readoptdb/readopt/internal/fault"
	"github.com/readoptdb/readopt/internal/plan"
	"github.com/readoptdb/readopt/internal/schema"
)

var aggFuncs = map[string]exec.AggFunc{
	"count": exec.Count, "sum": exec.Sum, "min": exec.Min, "max": exec.Max, "avg": exec.Avg,
}

// parseColumnType maps the wire's type names ("int32", "text(N)") back
// onto engine types.
func parseColumnType(ct readopt.ColumnType) (schema.Type, error) {
	s := string(ct)
	if s == "int32" {
		return schema.IntType, nil
	}
	if rest, ok := strings.CutPrefix(s, "text("); ok {
		if num, ok := strings.CutSuffix(rest, ")"); ok {
			n, err := strconv.Atoi(num)
			if err == nil && n > 0 {
				return schema.TextType(n), nil
			}
		}
	}
	return schema.Type{}, fmt.Errorf("shard: unknown column type %q", ct)
}

// synthAggInput reconstructs an input schema for the merge from the
// query and the shards' final-output types. The real scan schema does
// not matter: AggMerge only needs the group-by attributes (name, type,
// position) to carry the key bytes and the aggregate attributes to
// name the output columns — and the final output leads with the
// group-by columns in group-by order, so their types are types[:len(GroupBy)].
func synthAggInput(q readopt.Query, types []readopt.ColumnType) (*schema.Schema, []int, []exec.AggSpec, error) {
	nGroup := len(q.GroupBy)
	if len(types) < nGroup {
		return nil, nil, nil, fmt.Errorf("shard: %d result types for %d group-by columns", len(types), nGroup)
	}
	var attrs []schema.Attribute
	index := make(map[string]int)
	for i, col := range q.GroupBy {
		t, err := parseColumnType(types[i])
		if err != nil {
			return nil, nil, nil, err
		}
		attrs = append(attrs, schema.Attribute{Name: col, Type: t})
		index[col] = i
	}
	groupBy := make([]int, nGroup)
	for i := range groupBy {
		groupBy[i] = i
	}
	aggs := make([]exec.AggSpec, len(q.Aggs))
	for i, a := range q.Aggs {
		f, ok := aggFuncs[a.Func]
		if !ok {
			return nil, nil, nil, fmt.Errorf("shard: unknown aggregate function %q", a.Func)
		}
		attr := 0 // count(*) aggregates no column; any attribute will do
		if a.Column != "" {
			j, ok := index[a.Column]
			if !ok {
				j = len(attrs)
				attrs = append(attrs, schema.Attribute{Name: a.Column, Type: schema.IntType})
				index[a.Column] = j
			}
			attr = j
		}
		aggs[i] = exec.AggSpec{Func: f, Attr: attr}
	}
	if len(attrs) == 0 {
		// A bare count(*) references no column at all; COUNT ignores its
		// Attr, so one placeholder keeps schema.New satisfied without
		// touching the state layout (key width stays zero).
		attrs = append(attrs, schema.Attribute{Name: "__COUNT", Type: schema.IntType})
	}
	in, err := schema.New("shardmerge", attrs)
	if err != nil {
		return nil, nil, nil, err
	}
	return in, groupBy, aggs, nil
}

// mergeAgg folds the partitions' accumulator states into the final
// aggregated rows. resps is indexed by partition; nil entries are
// degraded partitions that contributed nothing.
func (c *Coordinator) mergeAgg(q readopt.Query, resps []*readopt.QueryResponse) (*readopt.QueryResponse, error) {
	var tmpl *readopt.QueryResponse
	for _, r := range resps {
		if r != nil {
			tmpl = r
			break
		}
	}
	if tmpl == nil {
		return nil, fault.Transient(fmt.Errorf("shard: no partition answered"))
	}
	in, groupBy, aggs, err := synthAggInput(q, tmpl.Types)
	if err != nil {
		return nil, err
	}
	stateSchema, err := exec.PartialStateSchema(in, groupBy, aggs)
	if err != nil {
		return nil, err
	}
	var states []byte
	for i, r := range resps {
		if r == nil {
			continue
		}
		if r.StateWidth != stateSchema.Width() {
			return nil, fault.Corruptf("shard: partition %d sent %d-byte states, want %d", i, r.StateWidth, stateSchema.Width())
		}
		b, derr := base64.StdEncoding.DecodeString(r.StateB64)
		if derr != nil {
			return nil, fault.Corruptf("shard: partition %d state decode: %v", i, derr)
		}
		if len(b)%stateSchema.Width() != 0 {
			return nil, fault.Corruptf("shard: partition %d sent %d state bytes, not a multiple of %d", i, len(b), stateSchema.Width())
		}
		states = append(states, b...)
	}
	src, err := exec.NewSliceSource(stateSchema, states, 0)
	if err != nil {
		return nil, err
	}
	var counters cpumodel.Counters
	m, err := exec.NewAggMerge(src, in, groupBy, aggs, &counters)
	if err != nil {
		return nil, err
	}
	tuples, err := drainTuples(m)
	if err != nil {
		return nil, err
	}
	outSch := m.Schema()
	rows, err := c.postAndDecode(outSch, tuples, q.OrderBy, q.Limit, &counters)
	if err != nil {
		return nil, err
	}
	out := &readopt.QueryResponse{
		Columns: tmpl.Columns,
		Types:   tmpl.Types,
		Rows:    rows,
	}
	return out, nil
}

// mergeRows concatenates the partitions' row results in partition
// order (scan order). A pushed-down LIMIT re-truncates; an ORDER BY
// re-encodes the rows and re-sorts (or re-tops) through plan.Post.
func (c *Coordinator) mergeRows(q readopt.Query, resps []*readopt.QueryResponse) (*readopt.QueryResponse, error) {
	var tmpl *readopt.QueryResponse
	total := 0
	for _, r := range resps {
		if r != nil {
			if tmpl == nil {
				tmpl = r
			}
			total += len(r.Rows)
		}
	}
	if tmpl == nil {
		return nil, fault.Transient(fmt.Errorf("shard: no partition answered"))
	}
	rows := make([][]any, 0, total)
	for _, r := range resps {
		if r != nil {
			rows = append(rows, r.Rows...)
		}
	}
	if len(q.OrderBy) > 0 {
		sch, err := wireSchema(tmpl.Columns, tmpl.Types)
		if err != nil {
			return nil, err
		}
		tuples, err := encodeRows(sch, rows)
		if err != nil {
			return nil, err
		}
		var counters cpumodel.Counters
		rows, err = c.postAndDecode(sch, tuples, q.OrderBy, q.Limit, &counters)
		if err != nil {
			return nil, err
		}
	} else if q.Limit > 0 && int64(len(rows)) > q.Limit {
		rows = rows[:q.Limit]
	}
	return &readopt.QueryResponse{
		Columns: tmpl.Columns,
		Types:   tmpl.Types,
		Rows:    rows,
	}, nil
}

// postAndDecode applies the coordinator-side ORDER BY / LIMIT post-pass
// (when any) and decodes tuples into wire rows.
func (c *Coordinator) postAndDecode(sch *schema.Schema, tuples []byte, orderBy []readopt.Order, limit int64, counters *cpumodel.Counters) ([][]any, error) {
	if len(orderBy) == 0 && limit == 0 {
		return decodeTuples(sch, tuples)
	}
	sort := make([]plan.SortSpec, len(orderBy))
	for i, o := range orderBy {
		sort[i] = plan.SortSpec{Column: o.Column, Desc: o.Desc}
	}
	op, err := plan.Post(sch, tuples, sort, limit, counters, nil)
	if err != nil {
		return nil, err
	}
	sorted, err := drainTuples(op)
	if err != nil {
		return nil, err
	}
	return decodeTuples(sch, sorted)
}

// drainTuples opens op, concatenates every output tuple and closes it.
func drainTuples(op exec.Operator) ([]byte, error) {
	if err := op.Open(); err != nil {
		_ = op.Close()
		return nil, err
	}
	var out []byte
	for {
		b, err := op.Next()
		if err != nil {
			_ = op.Close()
			return nil, err
		}
		if b == nil {
			break
		}
		for i := 0; i < b.Len(); i++ {
			out = append(out, b.Tuple(i)...)
		}
	}
	if err := op.Close(); err != nil {
		return nil, err
	}
	return out, nil
}

// wireSchema rebuilds an engine schema from the wire's column lists.
func wireSchema(cols []string, types []readopt.ColumnType) (*schema.Schema, error) {
	if len(cols) == 0 || len(cols) != len(types) {
		return nil, fmt.Errorf("shard: %d columns with %d types", len(cols), len(types))
	}
	attrs := make([]schema.Attribute, len(cols))
	for i := range cols {
		t, err := parseColumnType(types[i])
		if err != nil {
			return nil, err
		}
		attrs[i] = schema.Attribute{Name: cols[i], Type: t}
	}
	return schema.New("shardrows", attrs)
}

// encodeRows packs wire rows (int64/float64 for integers, string for
// text) back into engine tuples. Text re-pads with spaces — the same
// padding the engine stores — so a decode/encode round trip is
// byte-identical.
func encodeRows(sch *schema.Schema, rows [][]any) ([]byte, error) {
	w := sch.Width()
	out := make([]byte, 0, w*len(rows))
	tuple := make([]byte, w)
	for _, row := range rows {
		if len(row) != sch.NumAttrs() {
			return nil, fmt.Errorf("shard: row of %d values for %d columns", len(row), sch.NumAttrs())
		}
		for i := range tuple {
			tuple[i] = 0
		}
		for i, v := range row {
			a := sch.Attrs[i]
			if a.Type.Kind == schema.Int32 {
				switch x := v.(type) {
				case int64:
					sch.PutInt32At(tuple, i, int32(x))
				case float64: // JSON numbers decode as float64
					sch.PutInt32At(tuple, i, int32(x))
				case int:
					sch.PutInt32At(tuple, i, int32(x))
				default:
					return nil, fmt.Errorf("shard: value %T for integer column %s", v, a.Name)
				}
			} else {
				s, ok := v.(string)
				if !ok {
					return nil, fmt.Errorf("shard: value %T for text column %s", v, a.Name)
				}
				sch.PutTextAt(tuple, i, []byte(s))
			}
		}
		out = append(out, tuple...)
	}
	return out, nil
}

// decodeTuples unpacks engine tuples into wire rows: int64 for integer
// columns, padding-trimmed strings for text.
func decodeTuples(sch *schema.Schema, tuples []byte) ([][]any, error) {
	w := sch.Width()
	if len(tuples)%w != 0 {
		return nil, fmt.Errorf("shard: %d tuple bytes, width %d", len(tuples), w)
	}
	n := len(tuples) / w
	rows := make([][]any, 0, n)
	for r := 0; r < n; r++ {
		tuple := tuples[r*w : (r+1)*w]
		row := make([]any, sch.NumAttrs())
		for i, a := range sch.Attrs {
			if a.Type.Kind == schema.Int32 {
				row[i] = int64(sch.Int32At(tuple, i))
			} else {
				row[i] = trimPad(sch.TextAt(tuple, i))
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// trimPad drops the engine's trailing space padding from a text value,
// mirroring the facade's decoding.
func trimPad(b []byte) string {
	end := len(b)
	for end > 0 && b[end-1] == ' ' {
		end--
	}
	return string(b[:end])
}
