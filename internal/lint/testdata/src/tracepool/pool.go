// Package cpumodel is the dirty tracepool fixture: a four-field
// counter pool whose aggregator, wire conversion and snapshot each
// drop a counter.
package cpumodel

// Counters mirrors the real pool shape.
type Counters struct {
	Instr     int64
	SeqBytes  int64
	RandLines int64
	Pages     int64
}

// Add drops Pages, so the conservation sums go blind to it. The leak
// trips both the aggregator check and the conversion check.
func (c *Counters) Add(o Counters) { // want "Counters.Add drops pool counters Pages" "Add reads 3 of 4 counter-pool fields"
	c.Instr += o.Instr
	c.SeqBytes += o.SeqBytes
	c.RandLines += o.RandLines
}

type wire struct{ instr, seq, rand int64 }

// toWire reads three of the four counters: a conversion, not a probe,
// so it must be exhaustive.
func toWire(c Counters) wire { // want "toWire reads 3 of 4 counter-pool fields"
	return wire{instr: c.Instr, seq: c.SeqBytes, rand: c.RandLines}
}

// snapshot keys only two fields, leaving the rest zero in the copy.
func snapshot(c *Counters) Counters {
	return Counters{Instr: c.Instr, SeqBytes: c.SeqBytes} // want "partial copy of the counter pool"
}
