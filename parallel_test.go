package readopt

import (
	"bytes"
	"path/filepath"
	"testing"
)

// TestQueryParallelDopExceedsTuples: more partitions than rows still
// returns exactly the serial result.
func TestQueryParallelDopExceedsTuples(t *testing.T) {
	for _, layout := range []Layout{RowLayout, ColumnLayout, PAXLayout} {
		tbl, err := GenerateTPCH(filepath.Join(t.TempDir(), "t"), Orders(), layout, 10, 3, LoadOptions{})
		if err != nil {
			t.Fatal(err)
		}
		q := Query{Select: []string{"O_ORDERKEY", "O_TOTALPRICE"}}
		serial, err := tbl.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		want := rawTuples(t, serial)
		for _, dop := range []int{11, 64} {
			par, err := tbl.QueryParallel(q, dop)
			if err != nil {
				t.Fatalf("%s dop %d: %v", layout, dop, err)
			}
			if got := rawTuples(t, par); !bytes.Equal(got, want) {
				t.Errorf("%s dop %d: result differs (%d vs %d bytes)", layout, dop, len(got), len(want))
			}
		}
	}
}

// TestQueryParallelEmptyTable: a partitioned scan of zero rows is empty
// for every layout and dop, including aggregate shapes.
func TestQueryParallelEmptyTable(t *testing.T) {
	for _, layout := range []Layout{RowLayout, ColumnLayout, PAXLayout} {
		tbl, err := GenerateTPCH(filepath.Join(t.TempDir(), "t"), Orders(), layout, 0, 1, LoadOptions{})
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range []Query{
			{Select: []string{"O_ORDERKEY"}},
			{Aggs: []Agg{{Func: "count"}}},
		} {
			serial, err := tbl.Query(q)
			if err != nil {
				t.Fatal(err)
			}
			want := rawTuples(t, serial)
			for _, dop := range []int{2, 8} {
				par, err := tbl.QueryParallel(q, dop)
				if err != nil {
					t.Fatalf("%s dop %d: %v", layout, dop, err)
				}
				if got := rawTuples(t, par); !bytes.Equal(got, want) {
					t.Errorf("%s dop %d: empty-table result differs (%d vs %d bytes)",
						layout, dop, len(got), len(want))
				}
			}
		}
	}
}

// TestQueryParallelProperty: for a grid of query shapes and dop values,
// QueryParallel(q, dop) is byte-identical to Query(q) — the property the
// paper's "results trivially extend to multiple CPUs" claim rests on.
func TestQueryParallelProperty(t *testing.T) {
	tbl := loadOrders(t, ColumnLayout, 4321) // deliberately not a page multiple
	th10, err := tbl.SelectivityThreshold(0.10)
	if err != nil {
		t.Fatal(err)
	}
	th50, err := tbl.SelectivityThreshold(0.50)
	if err != nil {
		t.Fatal(err)
	}
	queries := []Query{
		{Select: []string{"O_ORDERKEY"}},
		{Select: []string{"O_ORDERKEY", "O_ORDERSTATUS"}, Where: []Cond{{Column: "O_ORDERDATE", Op: "<", Value: th10}}},
		{Select: []string{"O_TOTALPRICE"}, Where: []Cond{{Column: "O_ORDERDATE", Op: ">=", Value: th50}}},
		{GroupBy: []string{"O_ORDERSTATUS"}, Aggs: []Agg{{Func: "count"}, {Func: "min", Column: "O_TOTALPRICE"}, {Func: "max", Column: "O_TOTALPRICE"}}},
		{Aggs: []Agg{{Func: "sum", Column: "O_SHIPPRIORITY"}}},
		{Select: []string{"O_ORDERKEY", "O_TOTALPRICE"}, OrderBy: []Order{{Column: "O_TOTALPRICE", Desc: true}, {Column: "O_ORDERKEY"}}, Limit: 17},
	}
	for qi, q := range queries {
		serial, err := tbl.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		want := rawTuples(t, serial)
		for _, dop := range []int{2, 3, 5, 9, 33} {
			par, err := tbl.QueryParallel(q, dop)
			if err != nil {
				t.Fatalf("q%d dop %d: %v", qi, dop, err)
			}
			if got := rawTuples(t, par); !bytes.Equal(got, want) {
				t.Errorf("q%d dop %d: parallel != serial (%d vs %d bytes)", qi, dop, len(got), len(want))
			}
		}
	}
}
