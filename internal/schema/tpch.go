package schema

// This file defines the four table schemas of the paper's Figure 5:
// LINEITEM (150 bytes, 16 attributes), ORDERS (32 bytes, 7 attributes),
// and their compressed variants LINEITEM-Z (52 bytes) and ORDERS-Z
// (12 bytes). The tables derive from the TPC-H benchmark specification with
// the paper's modifications: all decimal types stored as four-byte
// integers, L_COMMENT fixed at 69 bytes to bring LINEITEM to 150 bytes,
// and ORDERS reduced to 7 attributes totalling 32 bytes.

// LineitemAttr indexes into the LINEITEM attribute list, matching the
// numbering of the paper's Figure 5 (zero-based here).
const (
	LPartKey = iota
	LOrderKey
	LSuppKey
	LLineNumber
	LQuantity
	LExtendedPrice
	LReturnFlag
	LLineStatus
	LShipInstruct
	LShipMode
	LComment
	LDiscount
	LTax
	LShipDate
	LCommitDate
	LReceiptDate
)

// OrdersAttr indexes into the ORDERS attribute list (zero-based).
const (
	OOrderDate = iota
	OOrderKey
	OCustKey
	OOrderStatus
	OOrderPriority
	OTotalPrice
	OShipPriority
)

// Lineitem returns the uncompressed LINEITEM schema (150 bytes decoded,
// 152 bytes stored per row-store tuple).
func Lineitem() *Schema {
	return MustNew("LINEITEM", []Attribute{
		{Name: "L_PARTKEY", Type: IntType},
		{Name: "L_ORDERKEY", Type: IntType},
		{Name: "L_SUPPKEY", Type: IntType},
		{Name: "L_LINENUMBER", Type: IntType},
		{Name: "L_QUANTITY", Type: IntType},
		{Name: "L_EXTENDEDPRICE", Type: IntType},
		{Name: "L_RETURNFLAG", Type: TextType(1)},
		{Name: "L_LINESTATUS", Type: TextType(1)},
		{Name: "L_SHIPINSTRUCT", Type: TextType(25)},
		{Name: "L_SHIPMODE", Type: TextType(10)},
		{Name: "L_COMMENT", Type: TextType(69)},
		{Name: "L_DISCOUNT", Type: IntType},
		{Name: "L_TAX", Type: IntType},
		{Name: "L_SHIPDATE", Type: IntType},
		{Name: "L_COMMITDATE", Type: IntType},
		{Name: "L_RECEIPTDATE", Type: IntType},
	})
}

// LineitemZ returns the compressed LINEITEM-Z schema with the paper's
// Figure 5 per-attribute encodings (52 bytes per compressed row tuple).
func LineitemZ() *Schema {
	return MustNew("LINEITEM-Z", []Attribute{
		{Name: "L_PARTKEY", Type: IntType},                                  // 1  non-compressed
		{Name: "L_ORDERKEY", Type: IntType, Enc: FORDelta, Bits: 8},         // 2Z delta, 8 bits
		{Name: "L_SUPPKEY", Type: IntType},                                  // 3  non-compressed
		{Name: "L_LINENUMBER", Type: IntType, Enc: BitPack, Bits: 3},        // 4Z pack, 3 bits
		{Name: "L_QUANTITY", Type: IntType, Enc: BitPack, Bits: 6},          // 5Z pack, 6 bits
		{Name: "L_EXTENDEDPRICE", Type: IntType},                            // 6  non-compressed
		{Name: "L_RETURNFLAG", Type: TextType(1), Enc: Dict, Bits: 2},       // 7Z dict, 2 bits
		{Name: "L_LINESTATUS", Type: TextType(1)},                           // 8  non-compressed
		{Name: "L_SHIPINSTRUCT", Type: TextType(25), Enc: Dict, Bits: 2},    // 9Z dict, 2 bits
		{Name: "L_SHIPMODE", Type: TextType(10), Enc: Dict, Bits: 3},        // 10Z dict, 3 bits
		{Name: "L_COMMENT", Type: TextType(69), Enc: BitPack, Bits: 28 * 8}, // 11Z pack, 28 bytes
		{Name: "L_DISCOUNT", Type: IntType, Enc: Dict, Bits: 4},             // 12Z dict, 4 bits
		{Name: "L_TAX", Type: IntType, Enc: Dict, Bits: 4},                  // 13Z dict, 4 bits
		{Name: "L_SHIPDATE", Type: IntType, Enc: BitPack, Bits: 16},         // 14Z pack, 2 bytes
		{Name: "L_COMMITDATE", Type: IntType, Enc: BitPack, Bits: 16},       // 15Z pack, 2 bytes
		{Name: "L_RECEIPTDATE", Type: IntType, Enc: BitPack, Bits: 16},      // 16Z pack, 2 bytes
	})
}

// Orders returns the uncompressed ORDERS schema (32 bytes decoded and
// stored).
func Orders() *Schema {
	return MustNew("ORDERS", []Attribute{
		{Name: "O_ORDERDATE", Type: IntType},
		{Name: "O_ORDERKEY", Type: IntType},
		{Name: "O_CUSTKEY", Type: IntType},
		{Name: "O_ORDERSTATUS", Type: TextType(1)},
		{Name: "O_ORDERPRIORITY", Type: TextType(11)},
		{Name: "O_TOTALPRICE", Type: IntType},
		{Name: "O_SHIPPRIORITY", Type: IntType},
	})
}

// OrdersZ returns the compressed ORDERS-Z schema with the paper's
// Figure 5 per-attribute encodings (12 bytes per compressed row tuple).
func OrdersZ() *Schema {
	return MustNew("ORDERS-Z", []Attribute{
		{Name: "O_ORDERDATE", Type: IntType, Enc: BitPack, Bits: 14},      // 1Z pack, 14 bits
		{Name: "O_ORDERKEY", Type: IntType, Enc: FORDelta, Bits: 8},       // 2Z delta, 8 bits
		{Name: "O_CUSTKEY", Type: IntType},                                // 3  non-compressed
		{Name: "O_ORDERSTATUS", Type: TextType(1), Enc: Dict, Bits: 2},    // 4Z dict, 2 bits
		{Name: "O_ORDERPRIORITY", Type: TextType(11), Enc: Dict, Bits: 3}, // 5Z dict, 3 bits
		{Name: "O_TOTALPRICE", Type: IntType},                             // 6  non-compressed
		{Name: "O_SHIPPRIORITY", Type: IntType, Enc: BitPack, Bits: 1},    // 7Z pack, 1 bit
	})
}

// OrdersZFOR returns the ORDERS-Z variant used in the paper's Figure 9
// comparison, where attribute 2 (O_ORDERKEY) uses plain FOR at 16 bits
// instead of FOR-delta at 8 bits: more space, less computation.
func OrdersZFOR() *Schema {
	s := OrdersZ()
	attrs := make([]Attribute, len(s.Attrs))
	copy(attrs, s.Attrs)
	attrs[OOrderKey].Enc = FOR
	attrs[OOrderKey].Bits = 16
	return MustNew("ORDERS-Z/FOR", attrs)
}
