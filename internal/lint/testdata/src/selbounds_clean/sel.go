// Package selboundsclean is the clean selbounds fixture: vectors flow
// only into declared consumers — the kernels themselves, Materialize
// and AllocN by name, a //readopt:selconsumer function — and through
// the allowed builtins. Positions derived from sel elements flow only
// into a //readopt:posconsumer that really bounds-checks them.
package selboundsclean

// EvalPredicate is the producer (exempt by name).
func EvalPredicate(codes []byte, sel []int32) int {
	n := 0
	for i := range codes {
		if codes[i] != 0 {
			sel[n] = int32(i)
			n++
		}
	}
	return n
}

// RefineSel is the second producer shape.
func RefineSel(codes []byte, sel []int32) int { return len(sel) }

type page struct {
	sel       []int32
	decoded   []byte
	positions []int64
}

func (p *page) fill(codes []byte) {
	p.sel = p.sel[:cap(p.sel)]
	n := EvalPredicate(codes, p.sel)
	n = RefineSel(codes, p.sel[:n])
	p.sel = p.sel[:n]
}

// Materialize is a consumer by name: it owns the bounds check.
func Materialize(decoded []byte, sel []int32, out []byte, size int) int {
	rows := len(decoded) / size
	done := 0
	for i, s := range sel {
		if int(s) >= rows {
			return done
		}
		copy(out[i*size:(i+1)*size], decoded[int(s)*size:(int(s)+1)*size])
		done++
	}
	return done
}

// gather carries the directive and its own bounds check.
//
//readopt:selconsumer
func gather(decoded []byte, sel []int32, out []byte) int {
	done := 0
	for i, s := range sel {
		if int(s) >= len(decoded) {
			return done
		}
		out[i] = decoded[s]
		done++
	}
	return done
}

// drive routes the vector only through declared consumers and the
// allowed builtins.
func (p *page) drive(out []byte) int {
	total := Materialize(p.decoded, p.sel, out, 1)
	total += gather(p.decoded, p.sel, out)
	total += len(p.sel)
	spare := make([]int32, 0, len(p.sel))
	spare = append(spare, p.sel...)
	copy(spare, p.sel)
	return total + cap(spare)
}

// buildPositions is the late-materialization producer shape: sel
// elements become global row positions, accumulated in an []int64
// field through the append builtin.
func (p *page) buildPositions(rowBase int64) {
	p.positions = p.positions[:0]
	for _, s := range p.sel {
		p.positions = append(p.positions, rowBase+int64(s))
	}
}

// fetch carries the posconsumer directive and honours its contract: the
// position is bounds-checked (via a derived index) before the payload
// read.
//
//readopt:posconsumer
func fetch(decoded []byte, pos int64, rowBase int64) byte {
	i := int(pos - rowBase)
	if i < 0 || i >= len(decoded) {
		return 0
	}
	return decoded[i]
}

// drain routes positions only through the declared posconsumer and the
// allowed builtins.
func (p *page) drain(rowBase int64, out []byte) int {
	for i, pos := range p.positions {
		out[i] = fetch(p.decoded, pos, rowBase)
	}
	spare := make([]int64, 0, len(p.positions))
	spare = append(spare, p.positions...)
	copy(spare, p.positions)
	return len(p.positions) + cap(spare)
}
