// Package faultcmp is the dirty faultcmp fixture: direct equality
// against the failure-taxonomy sentinels, which never matches because
// the engine always wraps them. Local sentinel declarations keep the
// fixture self-contained.
package faultcmp

import (
	"errors"
	"io"
)

var (
	ErrTransient = errors.New("transient")
	ErrCorrupt   = errors.New("corrupt")
	ErrCancelled = errors.New("cancelled")
	errOther     = errors.New("other")
)

func bareEq(err error) bool {
	return err == ErrTransient // want "ErrTransient"
}

func bareNeq(err error) bool {
	return ErrCorrupt != err // want "ErrCorrupt"
}

func switchCmp(err error) string {
	switch {
	case err == ErrCancelled: // want "ErrCancelled"
		return "cancelled"
	}
	return ""
}

// notSentinels: equality against other errors stays legal — the check
// must not outlaw err == io.EOF or comparisons with local errors.
func notSentinels(err error) bool {
	if err == io.EOF {
		return true
	}
	return err == errOther
}

func tolerated(err error) bool {
	//readopt:ignore faultcmp fixture exercises the line-above escape hatch
	return err == ErrTransient
}
