// Package closeleakclean is the clean closeleak fixture: every idiom
// that must not be flagged — defer, defer-closure, direct return,
// hand-off into a wrapper, the Abort error-path teardown, and the
// err-guard on a failed open.
package closeleakclean

import (
	"errors"
	"os"
)

var errStub = errors.New("stub")

type wrapper struct{ f *os.File }

func (w *wrapper) Close() error { return w.f.Close() }

func newWrapper(f *os.File) (*wrapper, error) { return &wrapper{f: f}, nil }

type writer struct{ done bool }

func (w *writer) Close() error { return nil }
func (w *writer) Abort()       {}

func newWriter() (*writer, error) { return &writer{}, nil }

// deferred is the canonical open-check-defer shape.
func deferred(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	var buf [8]byte
	_, err = f.Read(buf[:])
	return err
}

// deferClosure releases through a deferred closure.
func deferClosure(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer func() { _ = f.Close() }()
	return nil
}

// handedOff wraps the file: ownership moves to the wrapper, and on the
// wrap failing the file is closed here.
func handedOff(path string) (*wrapper, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	w, err := newWrapper(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	return w, nil
}

// returned hands the open file straight to the caller.
func returned(path string) (*os.File, error) {
	return os.Open(path)
}

// abortOnError exercises the Abort release verb: the error path tears
// the writer down without finalizing.
func abortOnError(fail bool) error {
	w, err := newWriter()
	if err != nil {
		return err
	}
	if fail {
		w.Abort()
		return errStub
	}
	return w.Close()
}

// closedBothArms closes on each branch separately.
func closedBothArms(path string, flag bool) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	if flag {
		return f.Close()
	}
	err = f.Close()
	return err
}
