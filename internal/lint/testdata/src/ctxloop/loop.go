// Package ctxloop is the dirty ctxloop fixture: hot-path I/O loops
// with a context in scope (receiver field or parameter) that never
// observe it, so cancellation waits for the whole file.
package ctxloop

import (
	"context"
	"io"
)

type reader struct {
	ctx context.Context
	src io.Reader
}

// drainUnchecked loops over Read with r.ctx in scope and never checks
// it.
//
//readopt:hotpath
func (r *reader) drainUnchecked(buf []byte) (int, error) {
	total := 0
	for { // want "I/O loop in hot path drainUnchecked never checks its context"
		n, err := r.src.Read(buf)
		total += n
		if err != nil {
			return total, err
		}
	}
}

// drainHalfChecked checks the context on one arm only: the deep=false
// iterations run unbounded.
//
//readopt:hotpath
func (r *reader) drainHalfChecked(buf []byte, deep bool) error {
	for { // want "I/O loop in hot path drainHalfChecked never checks its context"
		if deep {
			if err := r.ctx.Err(); err != nil {
				return err
			}
		}
		if _, err := r.src.Read(buf); err != nil {
			return err
		}
	}
}

// pumpParam takes the context as a parameter and still skips the check.
//
//readopt:hotpath
func pumpParam(ctx context.Context, src io.Reader, buf []byte) error {
	for i := 0; i < 1024; i++ { // want "I/O loop in hot path pumpParam never checks its context"
		if _, err := src.Read(buf); err != nil {
			return err
		}
	}
	return nil
}
