package harness

import (
	"fmt"

	"github.com/readoptdb/readopt/internal/cpumodel"
	"github.com/readoptdb/readopt/internal/model"
	"github.com/readoptdb/readopt/internal/schema"
)

// Series is one labelled curve of a figure.
type Series struct {
	Label  string
	Points []Point
}

// Result is a regenerated table or figure.
type Result struct {
	ID     string // "fig6", "table1", ...
	Title  string
	XLabel string
	Series []Series
	// Notes records reproduction caveats for EXPERIMENTS.md.
	Notes []string
}

// lineitemKs are the x-axis sample points of Figures 6 and 7: number of
// LINEITEM attributes selected.
var lineitemKs = []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}

// ordersKs are the x-axis points of Figures 8–10.
var ordersKs = []int{1, 2, 3, 4, 5, 6, 7}

// sweep runs one system across attribute counts.
func (h *Harness) sweep(sys System, sch *schema.Schema, ks []int, sel float64, opts RunOpts) (Series, error) {
	s := Series{Label: string(sys)}
	for _, k := range ks {
		pt, err := h.RunScan(sys, sch, Query{AttrsSelected: k, Selectivity: sel}, opts)
		if err != nil {
			return Series{}, fmt.Errorf("%s k=%d: %w", sys, k, err)
		}
		s.Points = append(s.Points, pt)
	}
	return s, nil
}

// Figure6 regenerates the baseline experiment: select the first k of
// LINEITEM's 16 attributes with a 10% selectivity predicate on
// L_PARTKEY. Elapsed time is I/O-bound for both systems; the row store is
// flat, the column store grows with the selected bytes and crosses over
// near full projection. The CPU breakdowns in the points are the bars of
// the figure's right-hand chart.
func (h *Harness) Figure6() (*Result, error) {
	row, err := h.sweep(RowSystem, schema.Lineitem(), lineitemKs, 0.10, RunOpts{})
	if err != nil {
		return nil, err
	}
	col, err := h.sweep(ColumnSystem, schema.Lineitem(), lineitemKs, 0.10, RunOpts{})
	if err != nil {
		return nil, err
	}
	return &Result{
		ID:     "fig6",
		Title:  "Baseline experiment (10% selectivity, LINEITEM)",
		XLabel: "selected bytes per tuple",
		Series: []Series{row, col},
	}, nil
}

// Figure7 repeats the baseline at 0.1% selectivity. I/O (and therefore
// elapsed time) is unchanged; the interest is the CPU breakdown, where
// the column system's added scan nodes now process one of every thousand
// values and its CPU curve flattens.
func (h *Harness) Figure7() (*Result, error) {
	row, err := h.sweep(RowSystem, schema.Lineitem(), lineitemKs, 0.001, RunOpts{})
	if err != nil {
		return nil, err
	}
	col, err := h.sweep(ColumnSystem, schema.Lineitem(), lineitemKs, 0.001, RunOpts{})
	if err != nil {
		return nil, err
	}
	return &Result{
		ID:     "fig7",
		Title:  "Changing selectivity to 0.1% (LINEITEM)",
		XLabel: "selected bytes per tuple",
		Series: []Series{row, col},
	}, nil
}

// Figure8 is the narrow-tuple experiment: the 32-byte ORDERS table at 10%
// selectivity. Both systems remain I/O-bound in elapsed time; in the CPU
// breakdown the memory-transfer components vanish (the bus outruns the
// CPU on narrow tuples).
func (h *Harness) Figure8() (*Result, error) {
	row, err := h.sweep(RowSystem, schema.Orders(), ordersKs, 0.10, RunOpts{})
	if err != nil {
		return nil, err
	}
	col, err := h.sweep(ColumnSystem, schema.Orders(), ordersKs, 0.10, RunOpts{})
	if err != nil {
		return nil, err
	}
	return &Result{
		ID:     "fig8",
		Title:  "10% selection query on ORDERS (narrow tuples)",
		XLabel: "selected bytes per tuple",
		Series: []Series{row, col},
	}, nil
}

// Figure9 is the compression experiment on the 12-byte ORDERS-Z table,
// with the column system run under both FOR-delta and plain FOR for
// attribute 2 (O_ORDERKEY): FOR-delta saves space but must decode every
// value in a page, FOR costs more bits but less computation.
func (h *Harness) Figure9() (*Result, error) {
	row, err := h.sweep(RowSystem, schema.OrdersZ(), ordersKs, 0.10, RunOpts{})
	if err != nil {
		return nil, err
	}
	delta, err := h.sweep(ColumnSystem, schema.OrdersZ(), ordersKs, 0.10, RunOpts{})
	if err != nil {
		return nil, err
	}
	delta.Label = "column FOR-delta"
	forPlain, err := h.sweep(ColumnSystem, schema.OrdersZFOR(), ordersKs, 0.10, RunOpts{})
	if err != nil {
		return nil, err
	}
	forPlain.Label = "column FOR"
	return &Result{
		ID:     "fig9",
		Title:  "Selection query on ORDERS-Z (compressed)",
		XLabel: "selected bytes per tuple (when uncompressed)",
		Series: []Series{row, delta, forPlain},
	}, nil
}

// figure10Depths are the prefetch depths of Figure 10.
var figure10Depths = []int{2, 4, 8, 16, 48}

// Figure10 sweeps the prefetch depth for the ORDERS scan: the row system
// (a single sequential scan) is insensitive, while the column system
// degrades as shrinking prefetch buffers turn reading into seeking.
func (h *Harness) Figure10() (*Result, error) {
	res := &Result{
		ID:     "fig10",
		Title:  "Varying the prefetch size when scanning ORDERS",
		XLabel: "selected bytes per tuple",
	}
	for _, d := range figure10Depths {
		s, err := h.sweep(ColumnSystem, schema.Orders(), ordersKs, 0.10, RunOpts{Depth: d})
		if err != nil {
			return nil, err
		}
		s.Label = fmt.Sprintf("column-%d", d)
		res.Series = append(res.Series, s)
	}
	row, err := h.sweep(RowSystem, schema.Orders(), ordersKs, 0.10, RunOpts{})
	if err != nil {
		return nil, err
	}
	res.Series = append(res.Series, row)
	return res, nil
}

// figure11Depths are the prefetch depths of Figure 11's three panels.
var figure11Depths = []int{48, 8, 2}

// Figure11 repeats the ORDERS scan in the presence of a competing
// LINEITEM row scan, for three prefetch depths, including the "slow"
// column engine that serializes its request submission. The aggressive
// column system stays ahead in the disk queues and outperforms the row
// system in every panel.
func (h *Harness) Figure11() ([]*Result, error) {
	var out []*Result
	for _, d := range figure11Depths {
		res := &Result{
			ID:     fmt.Sprintf("fig11-depth%d", d),
			Title:  fmt.Sprintf("ORDERS scan with a competing LINEITEM scan, prefetch %d", d),
			XLabel: "selected bytes per tuple",
		}
		opts := RunOpts{Depth: d, CompeteLineitem: true}
		row, err := h.sweep(RowSystem, schema.Orders(), ordersKs, 0.10, opts)
		if err != nil {
			return nil, err
		}
		row.Label = fmt.Sprintf("row-%d", d)
		col, err := h.sweep(ColumnSystem, schema.Orders(), ordersKs, 0.10, opts)
		if err != nil {
			return nil, err
		}
		col.Label = fmt.Sprintf("column-%d", d)
		slow, err := h.sweep(ColumnSlow, schema.Orders(), ordersKs, 0.10, opts)
		if err != nil {
			return nil, err
		}
		slow.Label = fmt.Sprintf("column-%d slow", d)
		res.Series = []Series{row, col, slow}
		out = append(out, res)
	}
	return out, nil
}

// Figure2 regenerates the summary contour from the analytical model,
// populated with the engine's calibrated CPU rates, as the paper does.
func (h *Harness) Figure2() ([]model.Figure2Cell, error) {
	return model.Figure2(h.Machine(), h.p.Costs)
}

// Machine returns the modelled machine.
func (h *Harness) Machine() cpumodel.Machine { return h.p.Machine }

// Trend is one row of Table 1: the expected direction of disk, memory and
// CPU time as a parameter grows, derived from the measured points rather
// than assumed.
type Trend struct {
	Parameter string
	Disk      int // +1 up, -1 down, 0 flat
	Mem       int
	CPU       int
}

// Table1 derives the paper's expected-trends table from measured pairs of
// runs on the column system (and, for tuple width, across tables).
func (h *Harness) Table1() ([]Trend, error) {
	direction := func(before, after, tolerance float64) int {
		switch {
		case after > before*(1+tolerance):
			return +1
		case after < before*(1-tolerance):
			return -1
		default:
			return 0
		}
	}
	var trends []Trend

	// Selecting more attributes (column store only).
	a, err := h.RunScan(ColumnSystem, schema.Lineitem(), Query{AttrsSelected: 4, Selectivity: 0.10}, RunOpts{})
	if err != nil {
		return nil, err
	}
	b, err := h.RunScan(ColumnSystem, schema.Lineitem(), Query{AttrsSelected: 12, Selectivity: 0.10}, RunOpts{})
	if err != nil {
		return nil, err
	}
	trends = append(trends, Trend{
		Parameter: "selecting more attributes (column store)",
		Disk:      direction(float64(a.IOBytes), float64(b.IOBytes), 0.02),
		Mem:       direction(a.CPU.UsrL2+a.CPU.UsrL1, b.CPU.UsrL2+b.CPU.UsrL1, 0.02),
		CPU:       direction(a.CPU.Total(), b.CPU.Total(), 0.02),
	})

	// Decreased selectivity.
	lo, err := h.RunScan(ColumnSystem, schema.Lineitem(), Query{AttrsSelected: 12, Selectivity: 0.001}, RunOpts{})
	if err != nil {
		return nil, err
	}
	trends = append(trends, Trend{
		Parameter: "decreased selectivity",
		Disk:      direction(float64(b.IOBytes), float64(lo.IOBytes), 0.02),
		Mem:       direction(b.CPU.UsrL2+b.CPU.UsrL1, lo.CPU.UsrL2+lo.CPU.UsrL1, 0.02),
		CPU:       direction(b.CPU.Total(), lo.CPU.Total(), 0.02),
	})

	// Narrower tuples (LINEITEM -> ORDERS, full projection).
	wide, err := h.RunScan(ColumnSystem, schema.Lineitem(), Query{AttrsSelected: 16, Selectivity: 0.10}, RunOpts{})
	if err != nil {
		return nil, err
	}
	narrow, err := h.RunScan(ColumnSystem, schema.Orders(), Query{AttrsSelected: 7, Selectivity: 0.10}, RunOpts{})
	if err != nil {
		return nil, err
	}
	trends = append(trends, Trend{
		Parameter: "narrower tuples",
		Disk:      direction(float64(wide.IOBytes), float64(narrow.IOBytes), 0.02),
		Mem:       direction(wide.CPU.UsrL2+wide.CPU.UsrL1, narrow.CPU.UsrL2+narrow.CPU.UsrL1, 0.02),
		CPU:       direction(wide.CPU.Total(), narrow.CPU.Total(), 0.02),
	})

	// Compression (ORDERS -> ORDERS-Z, full projection).
	z, err := h.RunScan(ColumnSystem, schema.OrdersZ(), Query{AttrsSelected: 7, Selectivity: 0.10}, RunOpts{})
	if err != nil {
		return nil, err
	}
	trends = append(trends, Trend{
		Parameter: "compression",
		Disk:      direction(float64(narrow.IOBytes), float64(z.IOBytes), 0.02),
		Mem:       direction(narrow.CPU.UsrL2+narrow.CPU.UsrL1, z.CPU.UsrL2+z.CPU.UsrL1, 0.02),
		CPU:       direction(narrow.CPU.UsrUop, z.CPU.UsrUop, 0.02),
	})

	// Larger prefetch (elapsed improves; bytes unchanged).
	small, err := h.RunScan(ColumnSystem, schema.Orders(), Query{AttrsSelected: 7, Selectivity: 0.10}, RunOpts{Depth: 2})
	if err != nil {
		return nil, err
	}
	large, err := h.RunScan(ColumnSystem, schema.Orders(), Query{AttrsSelected: 7, Selectivity: 0.10}, RunOpts{Depth: 48})
	if err != nil {
		return nil, err
	}
	trends = append(trends, Trend{
		Parameter: "larger prefetch",
		Disk:      direction(small.ElapsedSec, large.ElapsedSec, 0.02),
		Mem:       0,
		CPU:       0,
	})

	// More disk traffic.
	alone := large
	busy, err := h.RunScan(ColumnSystem, schema.Orders(), Query{AttrsSelected: 7, Selectivity: 0.10}, RunOpts{CompeteLineitem: true})
	if err != nil {
		return nil, err
	}
	trends = append(trends, Trend{
		Parameter: "more disk traffic",
		Disk:      direction(alone.ElapsedSec, busy.ElapsedSec, 0.02),
		Mem:       0,
		CPU:       0,
	})
	return trends, nil
}

// ExtensionPAX compares the three layouts — row, PAX, column — on the
// baseline LINEITEM query. It goes beyond the paper's two systems: PAX is
// the hybrid its related-work section describes, with the row store's I/O
// (a single file, elapsed time flat in projectivity) and the column
// store's cache behaviour (memory traffic follows the selected bytes).
func (h *Harness) ExtensionPAX() (*Result, error) {
	ks := []int{1, 4, 8, 12, 16}
	row, err := h.sweep(RowSystem, schema.Lineitem(), ks, 0.10, RunOpts{})
	if err != nil {
		return nil, err
	}
	pax, err := h.sweep(PAXSystem, schema.Lineitem(), ks, 0.10, RunOpts{})
	if err != nil {
		return nil, err
	}
	col, err := h.sweep(ColumnSystem, schema.Lineitem(), ks, 0.10, RunOpts{})
	if err != nil {
		return nil, err
	}
	return &Result{
		ID:     "ext-pax",
		Title:  "Extension: PAX layout vs row and column (10% selectivity, LINEITEM)",
		XLabel: "selected bytes per tuple",
		Series: []Series{row, pax, col},
		Notes: []string{
			"PAX elapsed time matches the row store at every projectivity (same file, same I/O);",
			"PAX CPU time tracks the column store's for narrow projections (minipage-only memory traffic).",
		},
	}, nil
}
