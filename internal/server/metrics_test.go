package server_test

import (
	"bytes"
	"context"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/readoptdb/readopt"
	"github.com/readoptdb/readopt/internal/server"
)

// metricValue extracts one sample's value from a Prometheus text body.
func metricValue(t *testing.T, body, name string) int64 {
	t.Helper()
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + ` (\S+)$`)
	m := re.FindStringSubmatch(body)
	if m == nil {
		t.Fatalf("metric %q not found in:\n%s", name, body)
	}
	v, err := strconv.ParseFloat(m[1], 64)
	if err != nil {
		t.Fatalf("metric %q value %q: %v", name, m[1], err)
	}
	return int64(v)
}

// TestMetricsEndpoint runs a small burst and checks /metrics exposes
// nonzero query, batching, byte-scanned and latency-histogram series in
// Prometheus text format.
func TestMetricsEndpoint(t *testing.T) {
	tbl := loadOrders(t, 2000)
	s := server.New(server.Config{Workers: 2})
	if err := s.AddTable("orders", tbl); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	client := readopt.NewClient(ts.URL, ts.Client())

	for i := 0; i < 5; i++ {
		if _, err := client.Do(context.Background(), readopt.QueryRequest{
			Table: "orders",
			Trace: i%2 == 0,
			Query: readopt.Query{Aggs: []readopt.Agg{{Func: "count"}}},
		}); err != nil {
			t.Fatal(err)
		}
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q", ct)
	}
	body := string(raw)

	if got := metricValue(t, body, `readopt_queries_total{outcome="completed"}`); got != 5 {
		t.Errorf("completed = %d, want 5", got)
	}
	if got := metricValue(t, body, "readopt_bytes_scanned_total"); got == 0 {
		t.Error("no bytes scanned reported")
	}
	if got := metricValue(t, body, "readopt_pages_touched_total"); got == 0 {
		t.Error("no pages touched reported")
	}
	if got := metricValue(t, body, "readopt_exec_seconds_count"); got != 5 {
		t.Errorf("exec histogram count = %d, want 5", got)
	}
	if got := metricValue(t, body, "readopt_queue_wait_seconds_count"); got != 5 {
		t.Errorf("queue wait histogram count = %d, want 5", got)
	}
	if got := metricValue(t, body, `readopt_exec_seconds_bucket{le="+Inf"}`); got != 5 {
		t.Errorf("exec +Inf bucket = %d, want 5", got)
	}
	if got := metricValue(t, body, "readopt_tables"); got != 1 {
		t.Errorf("tables gauge = %d, want 1", got)
	}
	for _, series := range []string{"readopt_singleton_runs_total", "readopt_rejected_total",
		"readopt_slow_queries_total", "readopt_draining", "readopt_io_requests_total",
		"readopt_instructions_total", "readopt_batches_total"} {
		if !strings.Contains(body, series) {
			t.Errorf("series %q missing", series)
		}
	}
}

// lockedWriter serializes log writes so the test can read the buffer
// without racing the dispatcher goroutine.
type lockedWriter struct {
	w  io.Writer
	mu *sync.Mutex
}

func (l *lockedWriter) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.w.Write(p)
}

// TestSlowQueryLog sets a threshold every query crosses and checks the
// configured logger receives the slow-query line and the counter moves.
func TestSlowQueryLog(t *testing.T) {
	tbl := loadOrders(t, 2000)
	var buf bytes.Buffer
	var mu sync.Mutex
	s := server.New(server.Config{
		Workers:            2,
		SlowQueryThreshold: time.Nanosecond,
		SlowQueryLog:       log.New(&lockedWriter{w: &buf, mu: &mu}, "", 0),
	})
	if err := s.AddTable("orders", tbl); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	client := readopt.NewClient(ts.URL, ts.Client())
	if _, err := client.Query(context.Background(), "orders",
		readopt.Query{Aggs: []readopt.Agg{{Func: "count"}}}); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	line := buf.String()
	mu.Unlock()
	if !strings.Contains(line, "slow query: table=orders") || !strings.Contains(line, "io_bytes=") {
		t.Errorf("slow-query log line missing or malformed: %q", line)
	}
	if st := s.Stats(); st.SlowQueries != 1 {
		t.Errorf("SlowQueries = %d, want 1", st.SlowQueries)
	}
}
