package readopt

import (
	"bytes"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/readoptdb/readopt/internal/fault"
)

// kvSchema is the ingest suite's table: an int32 key the table sorts on
// and an int32 value with a derivable per-key function, so any result
// can be checked arithmetically.
func kvSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewSchema("KV", []Column{
		{Name: "K", Type: Int32},
		{Name: "V", Type: Int32},
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// valOf is the value function: deterministic, non-constant, cheap to
// prefix-sum.
func valOf(i int) int64 { return int64(i%97 + 1) }

func createKV(t *testing.T, layout Layout, opts IngestOptions) *Table {
	t.Helper()
	opts.Key = "K"
	tbl, err := CreateIngest(filepath.Join(t.TempDir(), "kv"), kvSchema(t), layout, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tbl.CloseIngest() })
	return tbl
}

// countAndSum runs the aggregate pair every consistency assertion needs.
func countAndSum(t *testing.T, tbl *Table, dop int) (count, sum int64) {
	t.Helper()
	rows, err := tbl.QueryExec(Query{
		Aggs: []Agg{{Func: "count"}, {Func: "sum", Column: "V"}},
	}, ExecOptions{Dop: dop})
	if err != nil {
		t.Fatalf("dop=%d: %v", dop, err)
	}
	defer rows.Close()
	if !rows.Next() {
		// Aggregates over an empty table emit no row; the consistency
		// writer may not have committed its first batch yet.
		if err := rows.Err(); err != nil {
			t.Fatalf("dop=%d: %v", dop, err)
		}
		return 0, 0
	}
	vals, err := rows.Values()
	if err != nil {
		t.Fatal(err)
	}
	return vals[0].(int64), vals[1].(int64)
}

// TestIngestVisibilityAndLifecycle: rows are queryable the moment Insert
// returns, across memtable, spilled runs and compacted generations, at
// every layout and dop — and the lifecycle counters record the spills
// and compactions that happened along the way.
func TestIngestVisibilityAndLifecycle(t *testing.T) {
	const n = 3000
	width := kvSchema(t).inner.Width()
	for _, layout := range []Layout{RowLayout, ColumnLayout, PAXLayout} {
		t.Run(string(layout), func(t *testing.T) {
			tbl := createKV(t, layout, IngestOptions{
				MemtableBytes:    256 * width,
				CompactAfterRuns: 1 << 30, // manual compaction only
				DisableCompactor: true,
			})
			var wantSum int64
			for i := 0; i < n; i++ {
				if err := tbl.Insert(i, int(valOf(i))); err != nil {
					t.Fatal(err)
				}
				wantSum += valOf(i)
			}
			if got := tbl.Rows(); got != n {
				t.Fatalf("Rows = %d, want %d", got, n)
			}
			st := tbl.IngestStats()
			if st.Spills == 0 || st.LiveRuns == 0 {
				t.Fatalf("no spills after %d rows over a %d-row memtable: %+v", n, 256, st)
			}
			for _, dop := range []int{1, 2, 8} {
				if c, s := countAndSum(t, tbl, dop); c != n || s != wantSum {
					t.Fatalf("dop=%d pre-compact: count=%d sum=%d, want %d/%d", dop, c, s, n, wantSum)
				}
			}

			// A filtered projection must apply predicates to the overlay too.
			rows, err := tbl.Query(Query{Select: []string{"K", "V"}, Where: []Cond{{Column: "K", Op: "<", Value: 10}}})
			if err != nil {
				t.Fatal(err)
			}
			got, err := drainOrError(rows)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != 10*width {
				t.Fatalf("K<10 returned %d bytes, want %d", len(got), 10*width)
			}

			epoch := tbl.IngestStats().Epoch
			if err := tbl.Compact(); err != nil {
				t.Fatal(err)
			}
			st = tbl.IngestStats()
			if st.Compactions != 1 || st.LiveRuns != 0 || st.Epoch <= epoch {
				t.Fatalf("after compact: %+v (pre-epoch %d)", st, epoch)
			}
			for _, dop := range []int{1, 2, 8} {
				if c, s := countAndSum(t, tbl, dop); c != n || s != wantSum {
					t.Fatalf("dop=%d post-compact: count=%d sum=%d, want %d/%d", dop, c, s, n, wantSum)
				}
			}
		})
	}
}

// TestIngestSnapshotConsistency is the differential acceptance test for
// the write path: a writer inserts atomic batches while background
// compactions run and a query matrix (3 layouts handled by the outer
// loop, dop 1/2/8 here) hammers the table. Every answer must be
// consistent with EXACTLY ONE epoch: a whole number of committed
// batches, with the sum of V equal to the prefix sum at that count —
// never a torn batch, never rows from two versions.
func TestIngestSnapshotConsistency(t *testing.T) {
	const (
		batches   = 120
		batchSize = 50
	)
	width := kvSchema(t).inner.Width()

	// prefix[b] = sum of V over the first b batches.
	prefix := make([]int64, batches+1)
	for b := 0; b < batches; b++ {
		prefix[b+1] = prefix[b]
		for i := b * batchSize; i < (b+1)*batchSize; i++ {
			prefix[b+1] += valOf(i)
		}
	}

	for _, layout := range []Layout{RowLayout, ColumnLayout, PAXLayout} {
		t.Run(string(layout), func(t *testing.T) {
			tbl := createKV(t, layout, IngestOptions{
				MemtableBytes:    512 * width,
				CompactAfterRuns: 2, // background compactor races the queries
			})

			var committed atomic.Int64
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				for b := 0; b < batches; b++ {
					rows := make([][]any, batchSize)
					for j := 0; j < batchSize; j++ {
						i := b*batchSize + j
						rows[j] = []any{i, int(valOf(i))}
					}
					if err := tbl.InsertBatch(rows); err != nil {
						t.Errorf("batch %d: %v", b, err)
						return
					}
					committed.Add(1)
				}
			}()

			for r := 0; r < 40; r++ {
				for _, dop := range []int{1, 2, 8} {
					lo := committed.Load()
					count, sum := countAndSum(t, tbl, dop)
					hi := committed.Load()
					if count%batchSize != 0 {
						t.Fatalf("dop=%d: count %d is not a whole number of %d-row batches: torn batch visible",
							dop, count, batchSize)
					}
					b := count / batchSize
					if sum != prefix[b] {
						t.Fatalf("dop=%d: count %d rows but sum %d != prefix[%d]=%d: rows from more than one epoch",
							dop, count, sum, b, prefix[b])
					}
					if b < lo || b > hi {
						t.Fatalf("dop=%d: observed %d batches outside the committed window [%d,%d]", dop, b, lo, hi)
					}
				}
			}
			wg.Wait()

			// Quiesced: every layout and dop agrees byte-for-byte on the full
			// table, and the totals are exact.
			for _, dop := range []int{1, 2, 8} {
				if c, s := countAndSum(t, tbl, dop); c != batches*batchSize || s != prefix[batches] {
					t.Fatalf("final dop=%d: count=%d sum=%d, want %d/%d", dop, c, s, batches*batchSize, prefix[batches])
				}
			}
			q := Query{Select: []string{"K", "V"}}
			base, err := tbl.Query(q)
			if err != nil {
				t.Fatal(err)
			}
			want, err := drainOrError(base)
			if err != nil {
				t.Fatal(err)
			}
			for _, dop := range []int{2, 8} {
				rows, err := tbl.QueryExec(q, ExecOptions{Dop: dop})
				if err != nil {
					t.Fatal(err)
				}
				got, err := drainOrError(rows)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("dop=%d full scan differs from serial (%d vs %d bytes)", dop, len(got), len(want))
				}
			}
			if st := tbl.IngestStats(); st.Spills == 0 {
				t.Fatalf("consistency run never spilled: %+v", st)
			}
		})
	}
}

// TestIngestBatchSharedScan: a shared-scan batch over an ingest table
// pins one snapshot for the whole pass, so its members agree with each
// other and with solo execution.
func TestIngestBatchSharedScan(t *testing.T) {
	width := kvSchema(t).inner.Width()
	tbl := createKV(t, ColumnLayout, IngestOptions{
		MemtableBytes:    128 * width,
		DisableCompactor: true,
	})
	const n = 1000
	var wantSum int64
	for i := 0; i < n; i++ {
		if err := tbl.Insert(i, int(valOf(i))); err != nil {
			t.Fatal(err)
		}
		wantSum += valOf(i)
	}
	results, err := tbl.QueryBatch([]Query{
		{Aggs: []Agg{{Func: "count"}}},
		{Aggs: []Agg{{Func: "sum", Column: "V"}}},
		{Select: []string{"K"}, Where: []Cond{{Column: "K", Op: ">=", Value: n - 5}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	vals := make([][]any, len(results))
	for i, r := range results {
		if !r.Next() {
			t.Fatalf("batch member %d: no rows: %v", i, r.Err())
		}
		if vals[i], err = r.Values(); err != nil {
			t.Fatal(err)
		}
		tail := 1
		for r.Next() {
			tail++
		}
		if i == 2 && tail != 5 {
			t.Fatalf("tail query saw %d rows, want 5", tail)
		}
		r.Close()
	}
	if c := vals[0][0].(int64); c != n {
		t.Fatalf("batched count = %d, want %d", c, n)
	}
	if s := vals[1][0].(int64); s != wantSum {
		t.Fatalf("batched sum = %d, want %d", s, wantSum)
	}
}

// TestIngestChaos: seeded fault injection over an ingest table with live
// runs. Every query either matches the fault-free baseline byte for byte
// or fails with a typed taxonomy error (run-file faults classify as
// corrupt or transient), and no goroutines leak.
func TestIngestChaos(t *testing.T) {
	defer fault.DisableChaos()
	width := kvSchema(t).inner.Width()
	tbl := createKV(t, ColumnLayout, IngestOptions{
		MemtableBytes:    512 * width,
		DisableCompactor: true, // keep runs alive so chaos hits run reads
	})
	const n = 8000
	for i := 0; i < n; i++ {
		if err := tbl.Insert(i, int(valOf(i))); err != nil {
			t.Fatal(err)
		}
	}
	if st := tbl.IngestStats(); st.LiveRuns < 2 {
		t.Fatalf("chaos needs live runs, have %+v", st)
	}
	queries := []Query{
		{Aggs: []Agg{{Func: "count"}, {Func: "sum", Column: "V"}}},
		{Select: []string{"K", "V"}, Where: []Cond{{Column: "V", Op: ">", Value: 90}}},
	}
	fault.DisableChaos()
	wants := make([][]byte, len(queries))
	for qi, q := range queries {
		rows, err := tbl.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if wants[qi], err = drainOrError(rows); err != nil {
			t.Fatal(err)
		}
	}
	base := runtime.NumGoroutine()
	succeeded, failed := 0, 0
	for _, seed := range []int64{1, 2, 3, 4} {
		for _, dop := range []int{1, 2, 8} {
			// Milder rates than the plain-table chaos suite: an ingest
			// query opens one reader per live run (~15 here), so the
			// per-query fault exposure is an order of magnitude higher
			// and hotter rates would fail every single query.
			fault.EnableChaos(fault.Config{
				Seed:        seed,
				ReadErrRate: 0.05,
				PersistRate: 0.25,
				TornRate:    0.01,
				FlipRate:    0.01,
			})
			for qi, q := range queries {
				rows, err := tbl.QueryExec(q, ExecOptions{Dop: dop})
				var got []byte
				if err == nil {
					got, err = drainOrError(rows)
				}
				if err != nil {
					failed++
					if !typedFailure(err) {
						t.Errorf("seed=%d dop=%d q%d: untyped failure: %v", seed, dop, qi, err)
					}
					continue
				}
				succeeded++
				if !bytes.Equal(got, wants[qi]) {
					t.Errorf("seed=%d dop=%d q%d: SILENT WRONG DATA under chaos", seed, dop, qi)
				}
			}
			fault.DisableChaos()
			awaitGoroutines(t, base)
		}
	}
	if succeeded == 0 || failed == 0 {
		t.Errorf("degenerate chaos run: %d succeeded, %d failed", succeeded, failed)
	}
}

// TestIngestReopen: the facade round-trip — CloseIngest flushes, a plain
// OpenTable detects the ingest directory, and every row survives.
func TestIngestReopen(t *testing.T) {
	width := kvSchema(t).inner.Width()
	dir := filepath.Join(t.TempDir(), "kv")
	tbl, err := CreateIngest(dir, kvSchema(t), PAXLayout, IngestOptions{
		Key:              "K",
		MemtableBytes:    64 * width,
		DisableCompactor: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	const n = 500
	var wantSum int64
	for i := 0; i < n; i++ {
		if err := tbl.Insert(i, int(valOf(i))); err != nil {
			t.Fatal(err)
		}
		wantSum += valOf(i)
	}
	if err := tbl.CloseIngest(); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Insert(n, 1); err == nil {
		t.Fatal("insert after CloseIngest succeeded")
	}

	re, err := OpenTable(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.CloseIngest()
	if !re.IsIngest() {
		t.Fatal("OpenTable did not detect the ingest directory")
	}
	if c, s := countAndSum(t, re, 2); c != n || s != wantSum {
		t.Fatalf("reopened: count=%d sum=%d, want %d/%d", c, s, n, wantSum)
	}
	if err := re.Fsck(); err != nil {
		t.Fatalf("reopened ingest table fails fsck: %v", err)
	}
	if err := re.Verify(); err != nil {
		t.Fatalf("reopened ingest table fails Verify: %v", err)
	}
}

// TestIngestReadOnlyErrors: write calls against a plain table fail with
// a clear error instead of panicking.
func TestIngestReadOnlyErrors(t *testing.T) {
	tbl := loadOrders(t, RowLayout, 100)
	if err := tbl.Insert(1); err == nil {
		t.Fatal("Insert on a read-only table succeeded")
	}
	if err := tbl.InsertBatch([][]any{{1}}); err == nil {
		t.Fatal("InsertBatch on a read-only table succeeded")
	}
	if err := tbl.Flush(); err == nil {
		t.Fatal("Flush on a read-only table succeeded")
	}
	if err := tbl.Compact(); err == nil {
		t.Fatal("Compact on a read-only table succeeded")
	}
	if tbl.IsIngest() {
		t.Fatal("plain table claims to be ingest")
	}
	if err := tbl.CloseIngest(); err != nil {
		t.Fatalf("CloseIngest on a read-only table: %v", err)
	}
	if st := tbl.IngestStats(); st != (IngestStats{}) {
		t.Fatalf("read-only IngestStats = %+v, want zero", st)
	}
}
