// Example server: the query-serving subsystem end to end, in process.
//
// It loads the paper's ORDERS table, starts the readoptd server core on
// a local port, and fires a burst of concurrent queries at one table
// through the Go client. The queries arrive while the table is busy, so
// the scheduler coalesces them into QueryBatch shared scans — the
// /stats counters at the end show many queries answered for roughly one
// scan's worth of I/O, the paper's Section 2.1.1 claim as a service.
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"github.com/readoptdb/readopt"
	"github.com/readoptdb/readopt/internal/server"
)

func main() {
	dir, err := os.MkdirTemp("", "readopt-server")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	fmt.Println("== load ORDERS (column layout, 200k rows) ==")
	tbl, err := readopt.GenerateTPCH(filepath.Join(dir, "orders"), readopt.Orders(),
		readopt.ColumnLayout, 200_000, 1, readopt.LoadOptions{})
	if err != nil {
		log.Fatal(err)
	}

	srv := server.New(server.Config{Workers: 2, QueueDepth: 32, GatherWindow: 2 * time.Millisecond})
	if err := srv.AddTable("orders", tbl); err != nil {
		log.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := readopt.NewClient(ts.URL, http.DefaultClient)
	fmt.Println("serving at", ts.URL)

	infos, err := client.Tables(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	for _, ti := range infos {
		fmt.Printf("table %q: %s layout, %d rows, %d data bytes\n",
			ti.Name, ti.Layout, ti.Rows, ti.DataBytes)
	}

	th, err := tbl.SelectivityThreshold(0.10)
	if err != nil {
		log.Fatal(err)
	}
	queries := []readopt.Query{
		{Select: []string{"O_ORDERKEY", "O_TOTALPRICE"},
			Where: []readopt.Cond{{Column: "O_ORDERDATE", Op: "<", Value: th}},
			Limit: 5},
		{GroupBy: []string{"O_ORDERSTATUS"},
			Aggs: []readopt.Agg{{Func: "count"}, {Func: "avg", Column: "O_TOTALPRICE"}}},
		{Aggs: []readopt.Agg{{Func: "count"}}},
		{Select: []string{"O_TOTALPRICE"},
			OrderBy: []readopt.Order{{Column: "O_TOTALPRICE", Desc: true}},
			Limit:   3},
	}

	fmt.Println("\n== fire 12 concurrent queries at one table ==")
	var wg sync.WaitGroup
	for i := 0; i < 12; i++ {
		q := queries[i%len(queries)]
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := client.Query(context.Background(), "orders", q)
			if err != nil {
				log.Printf("query %d: %v", i, err)
				return
			}
			fmt.Printf("query %2d: %3d rows, batch of %d, scanned %8d bytes, waited %5dus, ran %6dus\n",
				i, len(resp.Rows), resp.BatchSize, resp.Stats.IOBytes,
				resp.QueueWaitMicros, resp.ExecMicros)
		}(i)
	}
	wg.Wait()

	fmt.Println("\n== one traced query: per-stage accounting over the wire ==")
	traced, err := client.Do(context.Background(), readopt.QueryRequest{
		Table: "orders",
		Trace: true,
		Query: readopt.Query{GroupBy: []string{"O_ORDERSTATUS"},
			Aggs: []readopt.Agg{{Func: "count"}, {Func: "avg", Column: "O_TOTALPRICE"}}},
	})
	if err != nil {
		log.Fatal(err)
	}
	if qt := traced.Trace; qt != nil {
		fmt.Printf("elapsed %dus, %d bytes read, %d pages touched\n",
			qt.ElapsedMicros, qt.IO.BytesRead, qt.PagesTouched)
		for _, stg := range qt.Stages {
			fmt.Printf("  stage %-12s rows %8d -> %8d  own %6dus  (%s)\n",
				stg.Op, stg.RowsIn, stg.RowsOut, stg.OwnTimeMicros, stg.Detail)
		}
	}

	fmt.Println("\n== /stats: shared-scan batching at work ==")
	st, err := client.Stats(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("admitted %d, completed %d, rejected %d\n", st.Admitted, st.Completed, st.Rejected)
	fmt.Printf("shared-scan batches: %d (answering %d queries, largest %d); singleton runs: %d\n",
		st.Batches, st.BatchedQueries, st.MaxBatchSize, st.SingletonRuns)
	fmt.Printf("total bytes scanned: %d — vs %d if every query had scanned alone\n",
		st.Work.IOBytes, int64(st.Admitted)*tbl.DataBytes())

	fmt.Println("\n== /metrics: the same story for a Prometheus scraper ==")
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	body, err := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if err != nil {
		log.Fatal(err)
	}
	for _, line := range strings.Split(string(body), "\n") {
		if strings.HasPrefix(line, "readopt_queries_total") ||
			strings.HasPrefix(line, "readopt_batch") ||
			strings.HasPrefix(line, "readopt_bytes_scanned_total") ||
			strings.HasPrefix(line, "readopt_exec_seconds_count") {
			fmt.Println(line)
		}
	}
}
