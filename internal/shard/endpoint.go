package shard

// One partition's replica set and the per-endpoint machinery: circuit
// breakers, health, latency sampling for the hedger, and counters.

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/readoptdb/readopt"
)

// breakerState is the classic three-state circuit.
type breakerState int32

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// latSamples sizes the sliding latency window behind adaptive hedging.
const latSamples = 64

// endpoint is one replica of one partition.
type endpoint struct {
	url    string
	client *readopt.Client

	requests atomic.Int64 // shard requests sent (probes excluded)
	errors   atomic.Int64 // shard requests that failed

	mu       sync.Mutex
	state    breakerState
	fails    int       // consecutive failures while closed
	openedAt time.Time // when the breaker last opened
	cooldown time.Duration
	limit    int // failures that open the breaker

	lat  [latSamples]time.Duration // latency ring for the hedger
	latN int                       // samples written (saturates at latSamples)
	latW int                       // next write position
}

func newEndpoint(url string, cfg Config) *endpoint {
	return &endpoint{
		url:      url,
		client:   readopt.NewClient(url, cfg.HTTPClient),
		cooldown: cfg.BreakerCooldown,
		limit:    cfg.BreakerThreshold,
	}
}

// allow reports whether the breaker currently admits a request. An
// open breaker past its cooldown flips to half-open and admits exactly
// one trial; the trial's outcome (recordSuccess / recordFailure)
// decides whether the circuit closes or re-opens.
func (e *endpoint) allow(now time.Time) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	switch e.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if now.Sub(e.openedAt) >= e.cooldown {
			e.state = breakerHalfOpen
			return true
		}
		return false
	default: // half-open: a trial is already in flight
		return false
	}
}

// recordSuccess closes the breaker and folds a latency sample into the
// hedger's window. Probes and catalog reads pass d = 0: a health
// verdict, not a query latency, so the window only sees real queries.
func (e *endpoint) recordSuccess(d time.Duration) {
	e.mu.Lock()
	e.state = breakerClosed
	e.fails = 0
	if d > 0 {
		e.lat[e.latW] = d
		e.latW = (e.latW + 1) % latSamples
		if e.latN < latSamples {
			e.latN++
		}
	}
	e.mu.Unlock()
}

// recordFailure counts a transient failure toward opening the breaker.
// A half-open trial that fails re-opens immediately.
func (e *endpoint) recordFailure(now time.Time) {
	e.mu.Lock()
	switch e.state {
	case breakerHalfOpen:
		e.state = breakerOpen
		e.openedAt = now
	case breakerClosed:
		e.fails++
		if e.fails >= e.limit {
			e.state = breakerOpen
			e.openedAt = now
		}
	case breakerOpen:
		// Refresh the window: a failing probe against an already-open
		// breaker pushes the half-open trial out.
		e.openedAt = now
	}
	e.mu.Unlock()
}

// probeSuccess and probeFailure are the health loop's verdicts; they
// feed the same breaker as live traffic, so probes both open the
// circuit on a dead replica and close it on a recovered one.
func (e *endpoint) probeSuccess() { e.recordSuccess(0) }

func (e *endpoint) probeFailure(now time.Time) { e.recordFailure(now) }

// breaker returns the current breaker state.
func (e *endpoint) breaker() breakerState {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.state
}

// latencyQuantile returns the q-quantile of the sliding window, or 0
// when fewer than latSamples/4 samples exist (too little signal to
// hedge on).
func (e *endpoint) latencyQuantile(q float64) time.Duration {
	e.mu.Lock()
	n := e.latN
	var buf [latSamples]time.Duration
	copy(buf[:], e.lat[:n])
	e.mu.Unlock()
	if n < latSamples/4 {
		return 0
	}
	s := buf[:n]
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := int(q * float64(n-1))
	return s[idx]
}

// partition is an ordered replica set; endpoints[0] is preferred.
type partition struct {
	index     int
	endpoints []*endpoint
}

// pick returns the preferred live endpoint, rotated by attempt so a
// retry moves to the next replica instead of hammering the one that
// just failed. Returns nil when every breaker rejects.
func (p *partition) pick(now time.Time, attempt int) *endpoint {
	n := len(p.endpoints)
	for i := 0; i < n; i++ {
		ep := p.endpoints[(attempt+i)%n]
		if ep.allow(now) {
			return ep
		}
	}
	return nil
}

// next returns a live endpoint other than ep for hedging, or nil.
func (p *partition) next(now time.Time, ep *endpoint) *endpoint {
	for _, other := range p.endpoints {
		if other != ep && other.allow(now) {
			return other
		}
	}
	return nil
}
