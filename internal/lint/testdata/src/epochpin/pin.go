// Package epochpin is the dirty epochpin fixture: snapshot and
// refcount acquires that miss their release on some path. The types
// mirror the wos shapes the analyzer keys on — a Snapshot() method
// whose result has Release(), and new* constructors returning a type
// with unexported retain/release.
package epochpin

import "errors"

type Store struct{ epoch uint64 }

type Snap struct{ epoch uint64 }

func (s *Store) Snapshot() *Snap { return &Snap{epoch: s.epoch} }
func (sn *Snap) Release()        {}
func (sn *Snap) Epoch() uint64   { return sn.epoch }

type version struct{ refs int }

func (v *version) retain()  { v.refs++ }
func (v *version) release() { v.refs-- }

var shared = &version{refs: 1}

func newVersion() *version { return &version{refs: 1} }

func newVersionErr(fail bool) (*version, error) {
	if fail {
		return nil, errors.New("no version")
	}
	return &version{refs: 1}, nil
}

// leakOnEarlyReturn drops the snapshot's pin on the n > 0 path.
func leakOnEarlyReturn(st *Store, n int) int {
	sn := st.Snapshot() // want "snapshot sn is not released on every path"
	if n > 0 {
		return n
	}
	sn.Release()
	return 0
}

// leakConstructor drops the refcounted constructor result when cond
// holds.
func leakConstructor(cond bool) {
	v := newVersion() // want "refcounted newVersion result v is not released"
	if cond {
		return
	}
	v.release()
}

// leakRetain takes an extra reference and forgets it on the early
// return.
func leakRetain(cond bool) {
	w := shared
	w.retain() // want "retained refcount on w is not released"
	if cond {
		return
	}
	w.release()
}

// discardSnapshot never even binds the pin.
func discardSnapshot(st *Store) {
	st.Snapshot() // want "snapshot result discarded"
}
