package fault

import (
	"context"
	"errors"
	"io"
	"math/rand"
	"testing"
	"time"

	"github.com/readoptdb/readopt/internal/aio"
)

func TestBackoffDelayExponentialAndCapped(t *testing.T) {
	b := Backoff{Base: 2 * time.Millisecond, Cap: 10 * time.Millisecond, Jitter: -1}
	want := []time.Duration{
		2 * time.Millisecond, 4 * time.Millisecond, 8 * time.Millisecond,
		10 * time.Millisecond, 10 * time.Millisecond,
	}
	for i, w := range want {
		if got := b.Delay(i + 1); got != w {
			t.Errorf("Delay(%d) = %v, want %v", i+1, got, w)
		}
	}
}

func TestBackoffZeroBaseNeverSleeps(t *testing.T) {
	b := Backoff{}
	for attempt := 1; attempt <= 5; attempt++ {
		if d := b.Delay(attempt); d != 0 {
			t.Fatalf("zero Backoff Delay(%d) = %v, want 0", attempt, d)
		}
	}
}

func TestBackoffJitterStaysInRange(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	b := Backoff{Base: 8 * time.Millisecond, Cap: 8 * time.Millisecond, Jitter: 0.5, Rand: rng.Float64}
	for i := 0; i < 100; i++ {
		d := b.Delay(1)
		if d < 4*time.Millisecond || d > 8*time.Millisecond {
			t.Fatalf("jittered delay %v outside [4ms, 8ms]", d)
		}
	}
}

func TestBackoffDefaultCap(t *testing.T) {
	b := Backoff{Base: time.Millisecond, Jitter: -1}
	if got := b.Delay(30); got != 32*time.Millisecond {
		t.Fatalf("uncapped Delay(30) = %v, want the 32×Base default cap", got)
	}
}

func TestBackoffSleepPollsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	b := Backoff{Base: time.Hour, Jitter: -1}
	start := time.Now()
	err := b.Sleep(ctx, nil, 1)
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("Sleep blocked %v on a cancelled context", elapsed)
	}
	if Classify(err) != KindCancelled {
		t.Fatalf("Sleep on cancelled ctx = %v, want a cancelled-tagged error", err)
	}
}

func TestBackoffSleepCancelledMidBackoff(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	b := Backoff{Base: time.Hour, Jitter: -1}
	err := b.Sleep(ctx, nil, 1)
	if Classify(err) != KindCancelled {
		t.Fatalf("Sleep interrupted mid-backoff = %v, want cancelled", err)
	}
}

// alwaysTransient is an aio.Reader whose every read fails transiently.
type alwaysTransient struct{}

func (alwaysTransient) Next() ([]byte, error) {
	return nil, Transient(errors.New("injected"))
}
func (alwaysTransient) Close() error { return nil }

func TestRetryReaderCtxStopsOnCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	open := func(skip int64) (aio.Reader, error) { return alwaysTransient{}, nil }
	r, err := NewRetryReaderCtx(ctx, open, 5, Backoff{Base: time.Hour, Jitter: -1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	_, err = r.Next()
	if err == io.EOF || Classify(err) != KindCancelled {
		t.Fatalf("Next under cancelled ctx = %v, want cancelled", err)
	}
}
