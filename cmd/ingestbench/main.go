// Command ingestbench measures the write path end to end: it drives
// batched inserts into an ingest table (memtable → sorted runs →
// background compaction) while a concurrent reader continuously checks
// snapshot consistency, then measures the repo's original write path —
// the deprecated WriteBuffer, whose MergeInto rewrites the whole table
// per batch — on the same workload for comparison.
//
//	ingestbench -rows 1000000 -json results/BENCH_ingest.json
//
// By default both paths run the same row count, a true head-to-head.
// MergeInto per batch is O(table size) per batch, so the baseline is
// quadratic overall; -baseline-rows shrinks it for quick runs, in which
// case the reported speedup is a lower bound at full scale (the old
// path's throughput only falls as the table grows).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"github.com/readoptdb/readopt"
)

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "ingestbench: "+format+"\n", args...)
	os.Exit(1)
}

// valOf is the deterministic value function: cheap to prefix-sum, so
// any (count, sum) pair maps back to a whole number of batches.
func valOf(i int64) int64 { return i%97 + 1 }

func kvSchema() *readopt.Schema {
	s, err := readopt.NewSchema("KV", []readopt.Column{
		{Name: "K", Type: readopt.Int32},
		{Name: "V", Type: readopt.Int32},
	})
	if err != nil {
		fatalf("schema: %v", err)
	}
	return s
}

// sideReport is one write path's measurement.
type sideReport struct {
	Rows       int64   `json:"rows"`
	Batches    int64   `json:"batches"`
	Micros     int64   `json:"micros"`
	RowsPerSec float64 `json:"rows_per_sec"`
	Note       string  `json:"note,omitempty"`
}

// checkerReport summarizes the reader that raced the ingest.
type checkerReport struct {
	// Queries is the number of count+sum aggregates run while the
	// writer was inserting; every one must have observed a whole number
	// of batches with the matching prefix sum.
	Queries int64 `json:"queries"`
	// Torn counts consistency violations (must be 0).
	Torn int64 `json:"torn"`
}

type report struct {
	Layout   readopt.Layout      `json:"layout"`
	Batch    int                 `json:"batch"`
	Ingest   sideReport          `json:"ingest"`
	Stats    readopt.IngestStats `json:"ingest_stats"`
	Checker  checkerReport       `json:"concurrent_checker"`
	Baseline sideReport          `json:"baseline_merge_into"`
	// Speedup is ingest rows/sec over baseline rows/sec — a lower bound
	// at full scale, since the baseline was measured on fewer rows.
	Speedup float64 `json:"speedup"`
}

// runIngest drives rows inserts through an ingest table in batches,
// with the background compactor on and a concurrent reader verifying
// snapshot consistency the whole time.
func runIngest(dir string, layout readopt.Layout, rows int64, batch int, memtable int) (sideReport, readopt.IngestStats, checkerReport) {
	tbl, err := readopt.CreateIngest(dir, kvSchema(), layout, readopt.IngestOptions{
		Key:           "K",
		MemtableBytes: memtable,
	})
	if err != nil {
		fatalf("CreateIngest: %v", err)
	}
	batches := rows / int64(batch)
	prefix := make([]int64, batches+1)
	for b := int64(0); b < batches; b++ {
		prefix[b+1] = prefix[b]
		for i := b * int64(batch); i < (b+1)*int64(batch); i++ {
			prefix[b+1] += valOf(i)
		}
	}

	var torn, queries atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		q := readopt.Query{Aggs: []readopt.Agg{{Func: "count"}, {Func: "sum", Column: "V"}}}
		for {
			select {
			case <-stop:
				return
			default:
			}
			rs, err := tbl.QueryExec(q, readopt.ExecOptions{Dop: 2})
			if err != nil {
				fatalf("checker query: %v", err)
			}
			if rs.Next() {
				vals, err := rs.Values()
				if err != nil {
					fatalf("checker values: %v", err)
				}
				count, sum := vals[0].(int64), vals[1].(int64)
				if count%int64(batch) != 0 || sum != prefix[count/int64(batch)] {
					torn.Add(1)
				}
			}
			rs.Close()
			queries.Add(1)
		}
	}()

	start := time.Now()
	buf := make([][]any, batch)
	for b := int64(0); b < batches; b++ {
		for j := 0; j < batch; j++ {
			i := b*int64(batch) + int64(j)
			buf[j] = []any{int(i), int(valOf(i))}
		}
		if err := tbl.InsertBatch(buf); err != nil {
			fatalf("InsertBatch %d: %v", b, err)
		}
	}
	elapsed := time.Since(start)
	close(stop)
	wg.Wait()

	// Final exactness check, then fold any remaining runs down into the
	// generation (outside the timed window) so the lifetime counters
	// reflect a complete memtable → runs → merge cycle.
	if got := tbl.Rows(); got != batches*int64(batch) {
		fatalf("ingest table holds %d rows, want %d", got, batches*int64(batch))
	}
	if err := tbl.Flush(); err != nil {
		fatalf("final flush: %v", err)
	}
	if tbl.IngestStats().LiveRuns > 0 {
		if err := tbl.Compact(); err != nil {
			fatalf("final compact: %v", err)
		}
	}
	st := tbl.IngestStats()
	if err := tbl.CloseIngest(); err != nil {
		fatalf("CloseIngest: %v", err)
	}
	return sideReport{
		Rows:       batches * int64(batch),
		Batches:    batches,
		Micros:     elapsed.Microseconds(),
		RowsPerSec: float64(batches*int64(batch)) / elapsed.Seconds(),
	}, st, checkerReport{Queries: queries.Load(), Torn: torn.Load()}
}

// runBaseline replays the repo's original write path: stage a batch in
// a WriteBuffer, then MergeInto — which reads the whole current table,
// folds the staged rows in, and writes a complete new table — once per
// batch.
func runBaseline(root string, layout readopt.Layout, rows int64, batch int) sideReport {
	// Seed an empty table for the first merge to fold into.
	seed := filepath.Join(root, "seed")
	seedTbl, err := readopt.CreateIngest(seed, kvSchema(), layout, readopt.IngestOptions{Key: "K"})
	if err != nil {
		fatalf("baseline seed: %v", err)
	}
	if err := seedTbl.CloseIngest(); err != nil {
		fatalf("baseline seed close: %v", err)
	}
	cur, err := readopt.OpenTable(seed)
	if err != nil {
		fatalf("baseline seed open: %v", err)
	}

	batches := rows / int64(batch)
	wb := readopt.NewWriteBuffer(kvSchema())
	start := time.Now()
	prevDir := ""
	for b := int64(0); b < batches; b++ {
		for j := 0; j < batch; j++ {
			i := b*int64(batch) + int64(j)
			if err := wb.Insert(int(i), int(valOf(i))); err != nil {
				fatalf("baseline insert: %v", err)
			}
		}
		dir := filepath.Join(root, fmt.Sprintf("gen-%d", b))
		next, err := wb.MergeInto(cur, dir, "K")
		if err != nil {
			fatalf("baseline MergeInto %d: %v", b, err)
		}
		if prevDir != "" {
			os.RemoveAll(prevDir)
		}
		cur, prevDir = next, dir
	}
	elapsed := time.Since(start)
	if got := cur.Rows(); got != batches*int64(batch) {
		fatalf("baseline table holds %d rows, want %d", got, batches*int64(batch))
	}
	return sideReport{
		Rows:       batches * int64(batch),
		Batches:    batches,
		Micros:     elapsed.Microseconds(),
		RowsPerSec: float64(batches*int64(batch)) / elapsed.Seconds(),
	}
}

func main() {
	rows := flag.Int64("rows", 1_000_000, "rows to ingest through the write path")
	baselineRows := flag.Int64("baseline-rows", 0, "rows for the MergeInto-per-batch baseline (default: same as -rows; it is quadratic, so shrink this for quick runs)")
	batch := flag.Int("batch", 1_000, "rows per insert batch")
	layoutName := flag.String("layout", "column", "table layout: row, column, or pax")
	memtable := flag.Int("memtable", 1<<20, "ingest memtable bound in bytes")
	dir := flag.String("dir", "", "working directory (default: a temp dir, removed afterwards)")
	jsonPath := flag.String("json", "", "write the report as JSON to this path")
	flag.Parse()
	if *baselineRows <= 0 {
		*baselineRows = *rows
	}

	var layout readopt.Layout
	switch *layoutName {
	case "row":
		layout = readopt.RowLayout
	case "column":
		layout = readopt.ColumnLayout
	case "pax":
		layout = readopt.PAXLayout
	default:
		fatalf("unknown layout %q", *layoutName)
	}
	root := *dir
	if root == "" {
		tmp, err := os.MkdirTemp("", "ingestbench")
		if err != nil {
			fatalf("mkdtemp: %v", err)
		}
		defer os.RemoveAll(tmp)
		root = tmp
	}

	ingest, stats, checker := runIngest(filepath.Join(root, "ingest"), layout, *rows, *batch, *memtable)
	if checker.Torn > 0 {
		fatalf("%d of %d concurrent queries observed a torn batch", checker.Torn, checker.Queries)
	}
	baseline := runBaseline(filepath.Join(root, "baseline"), layout, *baselineRows, *batch)
	if *baselineRows < *rows {
		baseline.Note = "MergeInto rewrites the whole table per batch (O(n) each), so this " +
			"throughput, measured on fewer rows, is an upper bound on the old path at full scale"
	}

	rep := report{
		Layout:   layout,
		Batch:    *batch,
		Ingest:   ingest,
		Stats:    stats,
		Checker:  checker,
		Baseline: baseline,
		Speedup:  ingest.RowsPerSec / baseline.RowsPerSec,
	}
	fmt.Printf("ingest:   %d rows in %.2fs (%.0f rows/s), %d spills, %d compactions, %d consistent concurrent queries\n",
		ingest.Rows, float64(ingest.Micros)/1e6, ingest.RowsPerSec, stats.Spills, stats.Compactions, checker.Queries)
	fmt.Printf("baseline: %d rows in %.2fs (%.0f rows/s) via MergeInto per batch\n",
		baseline.Rows, float64(baseline.Micros)/1e6, baseline.RowsPerSec)
	if *baselineRows < *rows {
		fmt.Printf("speedup:  %.1fx (lower bound: baseline measured at %d rows)\n", rep.Speedup, *baselineRows)
	} else {
		fmt.Printf("speedup:  %.1fx\n", rep.Speedup)
	}

	if *jsonPath != "" {
		out, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fatalf("marshal: %v", err)
		}
		if err := os.WriteFile(*jsonPath, append(out, '\n'), 0o644); err != nil {
			fatalf("write %s: %v", *jsonPath, err)
		}
		fmt.Printf("report:   %s\n", *jsonPath)
	}
}
