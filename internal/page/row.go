package page

import (
	"fmt"

	"github.com/readoptdb/readopt/internal/bitio"
	"github.com/readoptdb/readopt/internal/compress"
	"github.com/readoptdb/readopt/internal/schema"
)

// RowGeometry returns the page geometry for row pages of the given schema:
// uncompressed tuples occupy StoredWidth bytes each; compressed tuples
// occupy CompressedWidth bytes each, with attributes bit-packed inside the
// tuple and one trailer base slot per FOR/FOR-delta attribute.
func RowGeometry(s *schema.Schema, pageSize int) Geometry {
	g := Geometry{PageSize: pageSize}
	if s.Compressed() {
		g.EntryBits = 8 * s.CompressedWidth()
		for _, a := range s.Attrs {
			if a.Enc == schema.FOR || a.Enc == schema.FORDelta {
				g.BaseSlots++
			}
		}
	} else {
		g.EntryBits = 8 * s.StoredWidth()
	}
	return g
}

// baseSlotMap returns, for each attribute, its trailer base-slot index, or
// -1 when the attribute has no per-page base value.
func baseSlotMap(s *schema.Schema) []int {
	slots := make([]int, s.NumAttrs())
	next := 0
	for i, a := range s.Attrs {
		if a.Enc == schema.FOR || a.Enc == schema.FORDelta {
			slots[i] = next
			next++
		} else {
			slots[i] = -1
		}
	}
	return slots
}

// buildCodecs constructs one codec per attribute. dicts maps attribute
// index to the dictionary for Dict-encoded attributes; the map may be nil
// when the schema has no Dict attributes. Missing dictionaries are created
// empty and inserted into dicts, so a loader can pass an empty map and
// collect the dictionaries it built.
func buildCodecs(s *schema.Schema, dicts map[int]*compress.Dictionary) ([]compress.Codec, error) {
	codecs := make([]compress.Codec, s.NumAttrs())
	for i, a := range s.Attrs {
		var d *compress.Dictionary
		if a.Enc == schema.Dict {
			if dicts == nil {
				return nil, fmt.Errorf("page: schema %s attribute %s needs dictionaries", s.Name, a.Name)
			}
			d = dicts[i]
			if d == nil {
				d = compress.NewDictionary(a.Type.Size)
				dicts[i] = d
			}
		}
		c, err := compress.New(a, d)
		if err != nil {
			return nil, err
		}
		codecs[i] = c
	}
	return codecs, nil
}

// RowBuilder accumulates decoded tuples and packs them into row pages.
// The same builder handles compressed and uncompressed schemas; for
// compressed schemas it encodes each attribute page-at-a-time (FOR needs
// the page minimum, FOR-delta chains values) and scatters the fixed-width
// codes into each tuple's bit slots.
type RowBuilder struct {
	sch     *schema.Schema
	geo     Geometry
	codecs  []compress.Codec
	slots   []int
	staged  []byte // capacity * decoded width
	n       int
	page    []byte
	scratch []byte // contiguous codes for one attribute
}

// NewRowBuilder returns a builder for row pages of the given schema.
func NewRowBuilder(s *schema.Schema, pageSize int, dicts map[int]*compress.Dictionary) (*RowBuilder, error) {
	geo := RowGeometry(s, pageSize)
	if err := geo.Validate(); err != nil {
		return nil, err
	}
	codecs, err := buildCodecs(s, dicts)
	if err != nil {
		return nil, err
	}
	b := &RowBuilder{
		sch:    s,
		geo:    geo,
		codecs: codecs,
		slots:  baseSlotMap(s),
		staged: make([]byte, geo.Capacity()*s.Width()),
		page:   make([]byte, pageSize),
	}
	if s.Compressed() {
		maxBits := 0
		for i := range s.Attrs {
			if bits := geo.Capacity() * s.CodeBits(i); bits > maxBits {
				maxBits = bits
			}
		}
		b.scratch = make([]byte, bitio.SizeBytes(maxBits))
	}
	return b, nil
}

// Capacity returns the number of tuples per page.
func (b *RowBuilder) Capacity() int { return b.geo.Capacity() }

// Geometry returns the page geometry.
func (b *RowBuilder) Geometry() Geometry { return b.geo }

// Count returns the number of staged tuples.
func (b *RowBuilder) Count() int { return b.n }

// Full reports whether the page is at capacity and must be flushed.
func (b *RowBuilder) Full() bool { return b.n == b.geo.Capacity() }

// Add stages one decoded tuple (Schema.Width bytes). It panics when the
// page is full; callers check Full after each Add.
func (b *RowBuilder) Add(tuple []byte) {
	if len(tuple) != b.sch.Width() {
		panic(fmt.Sprintf("page: Add tuple of %d bytes, schema %s wants %d", len(tuple), b.sch.Name, b.sch.Width()))
	}
	if b.Full() {
		panic("page: Add on full RowBuilder")
	}
	copy(b.staged[b.n*b.sch.Width():], tuple)
	b.n++
}

// Flush encodes the staged tuples into a page with the given page ID and
// returns the page bytes. The returned slice is reused by the next Flush;
// callers persist it before staging more tuples. Flush on an empty builder
// returns an empty page with count zero.
func (b *RowBuilder) Flush(pageID uint32) ([]byte, error) {
	for i := range b.page {
		b.page[i] = 0
	}
	SetCount(b.page, b.n)
	b.geo.SetPageID(b.page, pageID)
	data := b.geo.Data(b.page)
	width := b.sch.Width()

	if !b.sch.Compressed() {
		stride := b.sch.StoredWidth()
		for i := 0; i < b.n; i++ {
			copy(data[i*stride:], b.staged[i*width:(i+1)*width])
		}
		b.n = 0
		return b.page, nil
	}

	tupleBits := b.geo.EntryBits
	for a, codec := range b.codecs {
		w := bitio.NewWriter(b.scratch)
		base, err := codec.EncodePage(w, b.staged[b.sch.Offset(a):], width, b.n)
		if err != nil {
			return nil, fmt.Errorf("page: %s.%s: %w", b.sch.Name, b.sch.Attrs[a].Name, err)
		}
		if slot := b.slots[a]; slot >= 0 {
			b.geo.SetBase(b.page, slot, base)
		}
		bits := b.sch.CodeBits(a)
		off := b.sch.BitOffset(a)
		for i := 0; i < b.n; i++ {
			bitio.CopyBits(data, i*tupleBits+off, b.scratch, i*bits, bits)
		}
	}
	b.n = 0
	return b.page, nil
}

// RowReader decodes row pages back into flat decoded tuples.
type RowReader struct {
	sch     *schema.Schema
	geo     Geometry
	codecs  []compress.Codec
	slots   []int
	scratch []byte
}

// NewRowReader returns a reader for row pages of the given schema. For
// compressed schemas, dicts must contain the dictionaries built at load
// time for every Dict attribute.
func NewRowReader(s *schema.Schema, pageSize int, dicts map[int]*compress.Dictionary) (*RowReader, error) {
	geo := RowGeometry(s, pageSize)
	if err := geo.Validate(); err != nil {
		return nil, err
	}
	codecs, err := buildCodecs(s, dicts)
	if err != nil {
		return nil, err
	}
	r := &RowReader{sch: s, geo: geo, codecs: codecs, slots: baseSlotMap(s)}
	if s.Compressed() {
		maxBits := 0
		for i := range s.Attrs {
			if bits := geo.Capacity() * s.CodeBits(i); bits > maxBits {
				maxBits = bits
			}
		}
		r.scratch = make([]byte, bitio.SizeBytes(maxBits))
	}
	return r, nil
}

// Geometry returns the page geometry.
func (r *RowReader) Geometry() Geometry { return r.geo }

// Capacity returns the number of tuples per page.
func (r *RowReader) Capacity() int { return r.geo.Capacity() }

// Decode unpacks all tuples of a page into dst (at least
// Count(page)*Schema.Width bytes) and returns the tuple count.
func (r *RowReader) Decode(pg, dst []byte) (int, error) {
	n := Count(pg)
	if n < 0 || n > r.geo.Capacity() {
		return 0, fmt.Errorf("page: corrupt row page: count %d exceeds capacity %d", n, r.geo.Capacity())
	}
	width := r.sch.Width()
	if len(dst) < n*width {
		return 0, fmt.Errorf("page: Decode destination too small: %d bytes for %d tuples", len(dst), n)
	}
	data := r.geo.Data(pg)

	if !r.sch.Compressed() {
		stride := r.sch.StoredWidth()
		for i := 0; i < n; i++ {
			copy(dst[i*width:], data[i*stride:i*stride+width])
		}
		return n, nil
	}

	tupleBits := r.geo.EntryBits
	for a, codec := range r.codecs {
		bits := r.sch.CodeBits(a)
		off := r.sch.BitOffset(a)
		for i := 0; i < n; i++ {
			bitio.CopyBits(r.scratch, i*bits, data, i*tupleBits+off, bits)
		}
		var base int32
		if slot := r.slots[a]; slot >= 0 {
			base = r.geo.Base(pg, slot)
		}
		if err := codec.DecodePage(bitio.NewReader(r.scratch), dst[r.sch.Offset(a):], width, n, base); err != nil {
			return 0, fmt.Errorf("page: %s.%s: %w", r.sch.Name, r.sch.Attrs[a].Name, err)
		}
	}
	return n, nil
}

// UncompressedTupleAt returns tuple i of an uncompressed row page without
// copying. The slice aliases the page. It panics on compressed schemas.
func (r *RowReader) UncompressedTupleAt(pg []byte, i int) []byte {
	if r.sch.Compressed() {
		panic("page: UncompressedTupleAt on compressed schema")
	}
	stride := r.sch.StoredWidth()
	data := r.geo.Data(pg)
	return data[i*stride : i*stride+r.sch.Width()]
}
