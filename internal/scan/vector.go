package scan

import (
	"io"

	"github.com/readoptdb/readopt/internal/bitio"
	"github.com/readoptdb/readopt/internal/compress"
	"github.com/readoptdb/readopt/internal/exec"
	"github.com/readoptdb/readopt/internal/fault"
)

// This file is the vectorized, operate-on-compressed drive of the
// pipelined column scanner. The scalar drive (driveDeepest) decodes and
// evaluates one value per iteration through virtual codec calls; the
// vectorized drive prepares a whole page at once — batch-unpacking the
// packed codes with the word-at-a-time bitio kernel and evaluating
// predicates directly on the codes via translated CodeMatch bounds —
// then streams the surviving selection vector into output blocks,
// materializing only qualifying values. Pages whose codec has no kernel
// (FOR-delta, wide text) or whose predicates do not translate (ranges
// over dictionary or packed-text codes) fall back to one batch decode of
// the page followed by value-space evaluation, which still amortizes the
// per-value call overhead the scalar path pays.

// kernOp converts the engine's comparison operator into the compress
// package's mirror type (compress sits below exec and declares its own).
func kernOp(op exec.CmpOp) compress.CmpOp {
	switch op {
	case exec.Lt:
		return compress.CmpLt
	case exec.Le:
		return compress.CmpLe
	case exec.Eq:
		return compress.CmpEq
	case exec.Ne:
		return compress.CmpNe
	case exec.Ge:
		return compress.CmpGe
	default:
		return compress.CmpGt
	}
}

// initVector sizes the deepest node's vectorized scratch: a code vector
// and selection vector covering one page, and one CodeMatch per
// predicate. Inner (attach) nodes stay scalar — they only probe
// qualifying positions.
func (c *ColScanner) initVector() {
	n0 := c.nodes[0]
	cur := n0.cur
	capacity := cur.cr.Capacity()
	cur.kern = cur.cr.Kernel()
	cur.sel = make([]int32, capacity)
	if cur.kern != nil {
		cur.codes = make([]uint64, capacity)
		cur.matches = make([]compress.CodeMatch, len(n0.preds))
	}
}

// pageRange clips the current page to the scan's [StartRow, EndRow)
// bounds, returning the in-range page row interval [lo, hi) and whether
// this is the scan's last page.
func (c *ColScanner) pageRange(cur *colCursor) (lo, hi int, last bool) {
	lo, hi = 0, cur.pgCount
	if skip := c.cfg.StartRow - cur.pgStart; skip > 0 {
		if skip >= int64(hi) {
			return hi, hi, false
		}
		lo = int(skip)
	}
	if c.cfg.EndRow > 0 && cur.pgStart+int64(cur.pgCount) >= c.cfg.EndRow {
		last = true
		if rem := c.cfg.EndRow - cur.pgStart; rem < int64(hi) {
			hi = int(rem)
		}
		if hi < lo {
			hi = lo
		}
	}
	return lo, hi, last
}

// prepPage prepares the freshly read page of the deepest node for
// vectorized consumption: translate the node's predicates into the
// page's code space and evaluate them on packed codes, or — when any
// predicate refuses the code domain — batch-decode the page once and
// evaluate on values. Either way the result is a selection vector of
// qualifying page rows.
func (c *ColScanner) prepPage(n0 *scanNode) (last bool, err error) {
	cur := n0.cur
	lo, hi, last := c.pageRange(cur)
	cur.vecLo = lo
	cur.selOff, cur.selN = 0, 0
	n := hi - lo
	if n <= 0 {
		return last, nil
	}
	if cur.prune {
		// Zone-map pruning: a page with no keep overlap cannot contain
		// a qualifying row — cross it without unpacking or decoding.
		if !KeepIntersects(cur.keep, cur.pgStart+int64(lo), cur.pgStart+int64(hi)) {
			return last, nil
		}
		cur.markActive()
		cur.fullCharge = true
	}
	c.cfg.Counters.AddInstr(int64(n) * c.cfg.Costs.ValueLoop)

	useCodes := cur.kern != nil
	if useCodes {
		base := cur.cr.Base(cur.pg)
		for k := range n0.preds {
			p := &n0.preds[k]
			m, ok := cur.kern.Translate(kernOp(p.Op), p.Int, p.Text, base)
			if !ok {
				useCodes = false
				break
			}
			cur.matches[k] = m
		}
	}
	if useCodes {
		cur.vecCodes = true
		bits := cur.attr.CodeBits()
		data := cur.cr.Geometry().Data(cur.pg)
		bitio.UnpackBlock(data, lo*bits, bits, n, cur.codes[:n])
		if len(n0.preds) == 0 {
			for i := 0; i < n; i++ {
				cur.sel[i] = int32(i)
			}
			cur.selN = n
			return last, nil
		}
		evals := int64(n)
		cur.selN = compress.EvalPredicate(cur.codes, n, cur.matches[0], cur.sel)
		for k := 1; k < len(n0.preds); k++ {
			evals += int64(cur.selN)
			cur.selN = compress.RefineSel(cur.codes, cur.matches[k], cur.sel[:cur.selN])
		}
		c.cfg.Counters.AddInstr(evals * c.cfg.Costs.Predicate)
		return last, nil
	}

	// Fallback: one batch decode of the page, then value-space filtering.
	cur.vecCodes = false
	if err := cur.ensureDecoded(); err != nil {
		return last, err
	}
	k := 0
	for i := lo; i < hi; i++ {
		v := cur.decoded[i*n0.size : (i+1)*n0.size]
		if n0.evalNodePreds(v, c.cfg.Counters, c.cfg.Costs) {
			cur.sel[k] = int32(i - lo)
			k++
		}
	}
	cur.selN = k
	return last, nil
}

// driveDeepestVec is the vectorized counterpart of driveDeepest: it
// fills the position list (and the deepest node's output slots) from
// page-sized selection vectors until the block fills or the column ends.
func (c *ColScanner) driveDeepestVec() error {
	n0 := c.nodes[0]
	cur := n0.cur
	width := c.out.Width()
	for !c.block.Full() {
		if cur.selOff >= cur.selN {
			if c.vecLast {
				c.eof = true
				return nil
			}
			if err := cur.nextPage(); err == io.EOF {
				c.eof = true
				return nil
			} else if err != nil {
				return err
			}
			if !cur.prune {
				cur.fullCharge = true // the deepest node streams everything
			}
			last, err := c.prepPage(n0)
			if err != nil {
				return err
			}
			if cur.prune && cur.selN > 0 {
				// Clip to the keep set: every emitted position must fall
				// inside it, or a payload column could be asked for a row
				// before its clipped section starts.
				cur.selN = filterSelKeep(cur.sel[:cur.selN], cur.keep, cur.pgStart+int64(cur.vecLo))
			}
			c.vecLast = last
			continue
		}
		take := cur.selN - cur.selOff
		if free := c.block.Cap() - c.block.Len(); take > free {
			take = free
		}
		chunk := cur.sel[cur.selOff : cur.selOff+take]
		rowBase := cur.pgStart + int64(cur.vecLo)
		for _, s := range chunk {
			c.positions = append(c.positions, rowBase+int64(s))
		}
		region := c.block.AllocN(take)
		if n0.outOff >= 0 {
			if cur.vecCodes {
				if err := cur.kern.Materialize(cur.codes, chunk, cur.cr.Base(cur.pg), region[n0.outOff:], width); err != nil {
					return err
				}
				c.cfg.Counters.AddInstr(int64(take) * (c.cfg.Costs.DecodeCost(cur.attr.Enc) + int64(n0.size)*c.cfg.Costs.CopyPerByte))
			} else {
				if err := materializeDecoded(cur.decoded, chunk, cur.vecLo, n0.size, region, width, n0.outOff); err != nil {
					return err
				}
				c.cfg.Counters.AddInstr(int64(take) * int64(n0.size) * c.cfg.Costs.CopyPerByte)
			}
		}
		cur.selOff += take
	}
	return nil
}

// materializeDecoded copies the selected rows of a decoded page into the
// output region; it is the decoded-fallback twin of Kernel.Materialize
// and carries the same contract: every selection index is range-checked
// against the decoded page before use, so a corrupt selection vector
// fails as a typed integrity error instead of reading a neighbor's
// bytes.
//
//readopt:selconsumer
func materializeDecoded(decoded []byte, sel []int32, lo, size int, region []byte, width, outOff int) error {
	rows := len(decoded) / size
	for i, s := range sel {
		row := lo + int(s)
		if s < 0 || row >= rows {
			return fault.Corruptf("scan: selection index %d outside decoded page of %d rows", row, rows)
		}
		copy(region[i*width+outOff:i*width+outOff+size], decoded[row*size:(row+1)*size])
	}
	return nil
}
