package readopt

import (
	"fmt"
	"time"

	"github.com/readoptdb/readopt/internal/clock"
	"github.com/readoptdb/readopt/internal/cpumodel"
	"github.com/readoptdb/readopt/internal/exec"
	"github.com/readoptdb/readopt/internal/plan"
	"github.com/readoptdb/readopt/internal/share"
	"github.com/readoptdb/readopt/internal/trace"
)

// QueryBatch evaluates several queries against the table in one shared
// pass — scan sharing, as in Teradata, RedBrick and SQL Server (the
// paper's Section 2.1.1): the table's data is read once and every query
// consumes the same stream, so N concurrent queries cost one scan's I/O.
// ORDER BY and LIMIT run per query after the shared pass materializes
// (fused into a bounded-heap top-n when both are present), so any query
// shape Query accepts can join a batch; results match solo execution.
// The returned result iterators are fully materialized and independent.
func (t *Table) QueryBatch(queries []Query) ([]*Rows, error) {
	return t.queryBatch(queries, ExecOptions{})
}

// QueryBatchTraced runs the batch like QueryBatch with per-query
// tracing: every result's Rows.Trace starts with the one shared scan
// stage (the I/O and decode work the whole batch paid once) and
// continues with that query's own shared-pass and post-pass stages.
func (t *Table) QueryBatchTraced(queries []Query) ([]*Rows, error) {
	return t.queryBatch(queries, ExecOptions{Trace: true})
}

// QueryBatchExec runs the batch with explicit execution options. A Dop
// above 1 parallelizes the shared scan itself — the one pass every
// batch member consumes is produced by partitioned workers and
// concatenated in partition order — so batching and parallelism
// compose.
func (t *Table) QueryBatchExec(queries []Query, opts ExecOptions) ([]*Rows, error) {
	return t.queryBatch(queries, opts)
}

func (t *Table) queryBatch(queries []Query, opts ExecOptions) ([]*Rows, error) {
	traced := opts.Trace
	if len(queries) == 0 {
		return nil, nil
	}
	// The shared scan reads the union of the columns any query touches.
	var unionCols []string
	colPos := map[string]int{}
	addCol := func(name string) error {
		if _, err := t.resolve(name); err != nil {
			return err
		}
		if _, ok := colPos[name]; !ok {
			colPos[name] = len(unionCols)
			unionCols = append(unionCols, name)
		}
		return nil
	}
	for i, q := range queries {
		if err := q.validate(); err != nil {
			return nil, fmt.Errorf("readopt: batch query %d: %w", i, err)
		}
		sel := q.Select
		if len(sel) == 0 {
			sel = q.GroupBy
		}
		for _, c := range sel {
			if err := addCol(c); err != nil {
				return nil, err
			}
		}
		for _, c := range q.GroupBy {
			if err := addCol(c); err != nil {
				return nil, err
			}
		}
		for _, c := range q.Where {
			if err := addCol(c.Column); err != nil {
				return nil, err
			}
		}
		for _, a := range q.Aggs {
			if a.Column != "" {
				if err := addCol(a.Column); err != nil {
					return nil, err
				}
			}
		}
	}
	if len(unionCols) == 0 {
		unionCols = []string{t.t.Schema.Attrs[0].Name}
	}
	proj := make([]int, len(unionCols))
	for i, c := range unionCols {
		proj[i], _ = t.resolve(c)
	}
	var counters cpumodel.Counters
	var btr *trace.Trace
	if traced {
		btr = trace.New()
	}
	// The shared scan is itself a compiled plan — a bare projection scan,
	// parallelized across partitions when the batch runs at dop > 1. An
	// ingest table's batch pins one snapshot for the whole pass, so every
	// member sees the same epoch; the pass materializes before return, so
	// releasing on exit is safe.
	tbl, delta, release := t.pin()
	defer release()
	p, err := plan.Compile(tbl, plan.Spec{Proj: proj, Dop: opts.Dop})
	if err != nil {
		return nil, err
	}
	src, err := p.Operator(plan.ExecOpts{
		Ctx:        opts.Ctx,
		Counters:   &counters,
		Trace:      btr,
		ScanStage:  "shared-scan",
		ScanDetail: fmt.Sprintf("%s layout, %d queries, %d columns", t.Layout(), len(queries), len(unionCols)),
		Delta:      delta,
	})
	if err != nil {
		return nil, err
	}
	// Until share.Run takes ownership (it closes src on every path), an
	// error return must close the scan here or its prefetch goroutines
	// leak.
	srcOwned := true
	defer func() {
		if srcOwned {
			_ = src.Close()
		}
	}()
	// Translate each facade query into a share.Query against the shared
	// schema.
	sharedQs := make([]share.Query, len(queries))
	for i, q := range queries {
		sel := q.Select
		if len(sel) == 0 {
			sel = q.GroupBy
		}
		sq := share.Query{}
		for _, c := range q.Where {
			p, err := condToPred(c, colPos[c.Column])
			if err != nil {
				return nil, err
			}
			sq.Preds = append(sq.Preds, p)
		}
		outPos := map[string]int{}
		for _, c := range sel {
			outPos[c] = len(sq.Proj)
			sq.Proj = append(sq.Proj, colPos[c])
		}
		for _, c := range q.GroupBy {
			if _, ok := outPos[c]; !ok {
				outPos[c] = len(sq.Proj)
				sq.Proj = append(sq.Proj, colPos[c])
			}
		}
		for _, a := range q.Aggs {
			if a.Column != "" {
				if _, ok := outPos[a.Column]; !ok {
					outPos[a.Column] = len(sq.Proj)
					sq.Proj = append(sq.Proj, colPos[a.Column])
				}
			}
		}
		if len(sq.Proj) == 0 {
			// A bare count(*) still needs a driving column; use the
			// shared stream's first.
			sq.Proj = []int{0}
		}
		for _, g := range q.GroupBy {
			sq.GroupBy = append(sq.GroupBy, outPos[g])
		}
		for _, a := range q.Aggs {
			f, ok := aggFuncs[a.Func]
			if !ok {
				return nil, fmt.Errorf("readopt: unknown aggregate %q", a.Func)
			}
			spec := exec.AggSpec{Func: f}
			if f != exec.Count {
				spec.Attr = outPos[a.Column]
			}
			sq.Aggs = append(sq.Aggs, spec)
		}
		sharedQs[i] = sq
	}

	// Traced batches fork the base trace per query: every member sees the
	// one shared scan stage, then its own shared-pass stage (fed by the
	// per-query counters share.Run supports) and post-pass stages.
	var forks []*trace.Trace
	var passStages []*trace.Stage
	if traced {
		forks = make([]*trace.Trace, len(queries))
		passStages = make([]*trace.Stage, len(queries))
		for i := range queries {
			forks[i] = btr.Fork()
			passStages[i] = forks[i].NewStage("shared-pass",
				fmt.Sprintf("%d predicates, %d output columns, %d aggregates",
					len(sharedQs[i].Preds), len(sharedQs[i].Proj), len(sharedQs[i].Aggs)))
			sharedQs[i].Counters = &passStages[i].Counters
		}
	}

	var passStart time.Time
	if traced {
		passStart = btr.Clock().Now()
	}
	srcOwned = false
	results, err := share.Run(src, sharedQs, &counters)
	if err != nil {
		return nil, err
	}
	var passTime time.Duration
	if traced {
		passTime = clock.Since(btr.Clock(), passStart)
	}

	out := make([]*Rows, len(results))
	closeOut := func() {
		for _, r := range out {
			if r != nil {
				_ = r.Close()
			}
		}
	}
	for i, res := range results {
		var tri *trace.Trace
		if traced {
			tri = forks[i]
			// The shared pass runs as one drain of the scan, not as a pull
			// chain per query, so each member's pass stage reports the whole
			// pass's wall time (inclusive of the scan it drove) and the
			// tuples the pass delivered to this query.
			passStages[i].Time = passTime
			passStages[i].RowsOut = int64(res.NumTuples())
		}
		// The post-pass (ORDER BY, LIMIT) is the plan layer's batch
		// tail: per-query Root stages over the materialized pass result.
		// ORDER BY + LIMIT fuse into a bounded-heap top-n as in the solo
		// planner; neither prevents a query from sharing the scan.
		orderBy := make([]plan.SortSpec, len(queries[i].OrderBy))
		for k, o := range queries[i].OrderBy {
			orderBy[k] = plan.SortSpec{Column: o.Column, Desc: o.Desc}
		}
		op, err := plan.Post(res.Schema, res.Tuples, orderBy, queries[i].Limit, &counters, tri)
		if err != nil {
			closeOut()
			return nil, fmt.Errorf("readopt: batch query %d: %w", i, err)
		}
		if err := op.Open(); err != nil {
			op.Close()
			closeOut()
			return nil, err
		}
		out[i] = &Rows{op: op, sch: op.Schema(), dop: p.Dop(), counters: &counters, tr: tri}
	}
	return out, nil
}

// condToPred converts a facade condition to an engine predicate on the
// given attribute index.
func condToPred(c Cond, attr int) (exec.Predicate, error) {
	op, ok := cmpOps[c.Op]
	if !ok {
		return exec.Predicate{}, fmt.Errorf("readopt: unknown comparison %q", c.Op)
	}
	switch v := c.Value.(type) {
	case int:
		return exec.IntPred(attr, op, int32(v)), nil
	case int32:
		return exec.IntPred(attr, op, v), nil
	case int64:
		return exec.IntPred(attr, op, int32(v)), nil
	case string:
		return exec.TextPred(attr, op, v), nil
	default:
		return exec.Predicate{}, fmt.Errorf("readopt: unsupported predicate value %T", c.Value)
	}
}
