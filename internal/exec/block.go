// Package exec is the pull-based, block-iterator query engine of the
// paper's Section 2.2.3. Every relational operator implements Operator:
// its parent calls Next and receives a block (array) of tuples. Passing
// blocks instead of single tuples amortizes the cost of the calls between
// operators and keeps the engine's instruction-cache behaviour flat; the
// block size is a tunable chosen so a block fits in the L1 data cache
// (100 tuples in all of the paper's experiments).
//
// Operators are agnostic about the database schema and operate on generic
// flat tuples. The implemented set matches the paper's: table scanners
// applying SARGable predicates (package scan), aggregation (sort-based
// and hash-based), and merge join. Blocks are reused between calls, so
// there is no memory allocation during query execution.
package exec

import (
	"fmt"

	"github.com/readoptdb/readopt/internal/schema"
)

// DefaultBlockTuples is the paper's block size: 100 tuples, sized for a
// 16KB L1 data cache.
const DefaultBlockTuples = 100

// Block is a fixed-capacity array of fixed-width tuples. The buffer is
// owned by the producing operator and reused across Next calls; consumers
// must finish with a block before pulling the next one.
type Block struct {
	sch   *schema.Schema
	width int
	data  []byte
	n     int
}

// NewBlock allocates a block for tuples of the given schema.
func NewBlock(sch *schema.Schema, capacity int) *Block {
	if capacity < 1 {
		panic("exec: block capacity must be positive")
	}
	return &Block{sch: sch, width: sch.Width(), data: make([]byte, capacity*sch.Width())}
}

// Schema returns the schema of the block's tuples.
func (b *Block) Schema() *schema.Schema { return b.sch }

// Cap returns the block's tuple capacity.
func (b *Block) Cap() int { return len(b.data) / b.width }

// Len returns the number of tuples currently in the block.
func (b *Block) Len() int { return b.n }

// Full reports whether the block is at capacity.
func (b *Block) Full() bool { return b.n == b.Cap() }

// Reset empties the block.
func (b *Block) Reset() { b.n = 0 }

// Tuple returns tuple i. The slice aliases the block's buffer.
//
//readopt:hotpath
func (b *Block) Tuple(i int) []byte {
	assertTupleIndex(b, i)
	return b.data[i*b.width : (i+1)*b.width]
}

// AppendTuple copies a tuple into the block. It panics when full; callers
// check Full.
//
//readopt:hotpath
func (b *Block) AppendTuple(t []byte) {
	if b.Full() {
		panic("exec: AppendTuple on full block")
	}
	assertBlockLen(b)
	copy(b.data[b.n*b.width:], t)
	b.n++
}

// Alloc returns the next free tuple slot and marks it used, letting
// producers build tuples in place without an extra copy.
//
//readopt:hotpath
func (b *Block) Alloc() []byte {
	if b.Full() {
		panic("exec: Alloc on full block")
	}
	assertBlockLen(b)
	t := b.data[b.n*b.width : (b.n+1)*b.width]
	b.n++
	return t
}

// AllocN marks n tuple slots used and returns their raw backing bytes,
// letting vectorized producers fill a whole run of tuples in one pass
// instead of calling Alloc per row. It panics when fewer than n slots
// remain; callers size their take against Cap() - Len().
//
//readopt:hotpath
func (b *Block) AllocN(n int) []byte {
	if n < 0 || b.n+n > b.Cap() {
		panic("exec: AllocN beyond block capacity")
	}
	assertBlockLen(b)
	t := b.data[b.n*b.width : (b.n+n)*b.width]
	b.n += n
	return t
}

// CopyFrom replaces the block's contents with a copy of src's tuples.
// It panics when src holds more tuples than the block's capacity;
// callers size transfer blocks to their producers' block size. The
// exchange operator uses it to hand blocks across goroutines without
// aliasing a producer's reused buffer.
//
//readopt:hotpath
func (b *Block) CopyFrom(src *Block) {
	if src.n > b.Cap() {
		panic("exec: CopyFrom overflows block capacity")
	}
	assertBlockLen(src)
	b.n = src.n
	copy(b.data, src.data[:src.n*src.width])
}

// Truncate shrinks the block to n tuples (compaction after filtering).
func (b *Block) Truncate(n int) {
	if n < 0 || n > b.n {
		panic(fmt.Sprintf("exec: Truncate(%d) outside [0,%d]", n, b.n))
	}
	b.n = n
}

// Operator is the engine's pull-based iterator interface. A query plan is
// a tree of Operators; evaluation drives the root's Next until it returns
// a nil block.
type Operator interface {
	// Open prepares the operator (and its children) for execution.
	Open() error
	// Next returns the next block of tuples, or nil at end of stream.
	// The returned block is valid until the following Next or Close.
	Next() (*Block, error)
	// Close releases resources. It is safe after a failed Open.
	Close() error
	// Schema describes the operator's output tuples.
	Schema() *schema.Schema
}
