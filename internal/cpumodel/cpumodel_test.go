package cpumodel

import (
	"math"
	"testing"

	"github.com/readoptdb/readopt/internal/schema"
)

func TestPaper2006Constants(t *testing.T) {
	m := Paper2006()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.ClockHz != 3.2e9 || m.CPUs != 1 || m.UopsPerCycle != 3 {
		t.Errorf("unexpected paper machine: %+v", m)
	}
	// Section 4.1: one 128-byte line per 128 cycles.
	if m.SeqBytesPerCycle != 1.0 || m.LineBytes != 128 || m.RandStallCycles != 380 {
		t.Errorf("memory constants differ from the paper: %+v", m)
	}
}

func TestValidateRejectsBadMachines(t *testing.T) {
	bad := Paper2006()
	bad.ClockHz = 0
	if bad.Validate() == nil {
		t.Error("zero clock accepted")
	}
	bad = Paper2006()
	bad.RestFraction = -1
	if bad.Validate() == nil {
		t.Error("negative rest fraction accepted")
	}
}

// TestCPDBMatchesPaperRatings pins the cpdb values quoted in Section 5:
// the paper's machine is rated 18 cpdb over three disks and 54 over one.
func TestCPDBMatchesPaperRatings(t *testing.T) {
	m := Paper2006()
	if got := m.CPDB(180e6); math.Abs(got-17.8) > 0.5 {
		t.Errorf("cpdb over 3 disks = %.1f, want about 18", got)
	}
	if got := m.CPDB(60e6); math.Abs(got-53.3) > 1 {
		t.Errorf("cpdb over 1 disk = %.1f, want about 54", got)
	}
}

func TestCountersAdd(t *testing.T) {
	var c Counters
	c.AddInstr(100)
	c.AddSeq(4096)
	c.AddRandLines(3, 128)
	c.AddIO(1 << 20)
	if c.Instr != 100 || c.SeqBytes != 4096 || c.RandLines != 3 {
		t.Errorf("counters = %+v", c)
	}
	if c.L1Bytes != 4096+3*128 {
		t.Errorf("L1Bytes = %d, want %d", c.L1Bytes, 4096+3*128)
	}
	if c.IORequests != 1 || c.IOBytes != 1<<20 {
		t.Errorf("IO counters = %d/%d", c.IORequests, c.IOBytes)
	}
	var sum Counters
	sum.Add(c)
	sum.Add(c)
	if sum.Instr != 200 || sum.IOBytes != 2<<20 {
		t.Errorf("Add accumulation wrong: %+v", sum)
	}
}

func TestNilCountersAreSafe(t *testing.T) {
	var c *Counters
	c.AddInstr(1)
	c.AddSeq(1)
	c.AddRandLines(1, 128)
	c.AddIO(1)
	c.Add(Counters{Instr: 5})
}

func TestScale(t *testing.T) {
	c := Counters{Instr: 100, SeqBytes: 200, RandLines: 10, L1Bytes: 300, IORequests: 4, IOBytes: 4000}
	s := c.Scale(2.5)
	if s.Instr != 250 || s.SeqBytes != 500 || s.RandLines != 25 || s.L1Bytes != 750 || s.IORequests != 10 || s.IOBytes != 10000 {
		t.Errorf("Scale = %+v", s)
	}
}

// TestBreakdownSysMatchesFigure6: a 9.66GB scan (the LINEITEM row store)
// spends about 2.5 seconds in system mode on the paper's machine.
func TestBreakdownSysMatchesFigure6(t *testing.T) {
	m := Paper2006()
	var c Counters
	total := int64(9.66e9)
	unit := int64(3 * 128 << 10)
	for read := int64(0); read < total; read += unit {
		c.AddIO(unit)
	}
	b := m.Breakdown(c)
	if b.Sys < 2.0 || b.Sys > 3.0 {
		t.Errorf("sys time for 9.66GB scan = %.2fs, want about 2.5s", b.Sys)
	}
}

// TestBreakdownOverlap: sequential memory transfer time is overlapped
// with computation; only the excess shows up as usr-L2.
func TestBreakdownOverlap(t *testing.T) {
	m := Paper2006()
	// Computation-heavy: seq transfer fully hidden.
	heavy := Counters{Instr: 32e9, SeqBytes: 3.2e9}
	b := m.Breakdown(heavy)
	if b.UsrL2 != 0 {
		t.Errorf("usr-L2 = %v, want 0 when computation dominates", b.UsrL2)
	}
	wantUop := 32e9 / 3 / 3.2e9
	if math.Abs(b.UsrUop-wantUop) > 1e-9 {
		t.Errorf("usr-uop = %v, want %v", b.UsrUop, wantUop)
	}
	// Memory-heavy: transfer exceeds computation; excess is exposed.
	light := Counters{Instr: 3.2e9, SeqBytes: 6.4e9}
	b = m.Breakdown(light)
	wantL2 := 6.4e9/3.2e9 - 3.2e9/3/3.2e9
	if math.Abs(b.UsrL2-wantL2) > 1e-9 {
		t.Errorf("usr-L2 = %v, want %v", b.UsrL2, wantL2)
	}
}

func TestBreakdownRandomStalls(t *testing.T) {
	m := Paper2006()
	c := Counters{RandLines: 1_000_000}
	b := m.Breakdown(c)
	want := 1e6 * 380 / 3.2e9
	if math.Abs(b.UsrL2-want) > 1e-9 {
		t.Errorf("random stall time = %v, want %v", b.UsrL2, want)
	}
}

func TestBreakdownTotalAndRest(t *testing.T) {
	m := Paper2006()
	c := Counters{Instr: 9.6e9}
	b := m.Breakdown(c)
	if math.Abs(b.UsrRest-b.UsrUop*m.RestFraction) > 1e-12 {
		t.Errorf("usr-rest = %v, want %v", b.UsrRest, b.UsrUop*m.RestFraction)
	}
	sum := b.Sys + b.UsrUop + b.UsrL2 + b.UsrL1 + b.UsrRest
	if math.Abs(b.Total()-sum) > 1e-12 {
		t.Errorf("Total = %v, want %v", b.Total(), sum)
	}
}

// TestMoreCPUsReduceTime: the same work on a 2-CPU machine takes half the
// user time (the paper treats parallelism as added CPU bandwidth).
func TestMoreCPUsReduceTime(t *testing.T) {
	m := Paper2006()
	c := Counters{Instr: 9.6e9, SeqBytes: 1e9, IOBytes: 1e9, IORequests: 1000}
	one := m.Breakdown(c).Total()
	m.CPUs = 2
	two := m.Breakdown(c).Total()
	if math.Abs(two-one/2) > 1e-9 {
		t.Errorf("2-CPU time = %v, want %v", two, one/2)
	}
}

func TestDecodeCost(t *testing.T) {
	c := DefaultCosts()
	if c.DecodeCost(schema.None) != 0 {
		t.Error("raw decode should cost nothing")
	}
	for _, e := range []schema.Encoding{schema.BitPack, schema.Dict, schema.FOR, schema.FORDelta} {
		if c.DecodeCost(e) <= 0 {
			t.Errorf("decode cost for %v not positive", e)
		}
	}
	// The paper's Figure 9: FOR is computationally lighter than
	// FOR-delta (which must chain through every value).
	if c.DecodeFOR >= c.DecodeDelta {
		t.Error("FOR should cost less than FOR-delta per value")
	}
}
