package lint

import (
	"go/ast"
	"strings"
)

// RetryCtx guards the retry discipline the sharded serving tier runs
// on: a retry loop — one that consults the failure taxonomy to decide
// whether to try again — must wait between attempts through the
// ctx-aware backoff helper (fault.Backoff.Sleep(ctx, clk, attempt)),
// never a bare time.Sleep or clock Sleep. A context-blind sleep in a
// retry loop is exactly where a cancelled query keeps burning its
// deadline: the caller gave up, the loop naps anyway, and the worker
// slot stays held for the full backoff schedule.
//
// The check is name-based like the rest of the taxonomy suite: a
// for/range loop counts as a retry loop when its body mentions the
// taxonomy (Classify, IsTransient, ErrTransient, KindTransient). Inside
// such a loop, every call to a function or method named Sleep must take
// a context.Context as its first argument — the helper's signature —
// so cancellation interrupts the wait. Goroutines launched from the
// loop are exempt: they do not block the retry path. The fault package
// itself, which defines the helper, is skipped.
var RetryCtx = &Analyzer{
	Name: "retryctx",
	Doc: "retry loops (loops consulting the failure taxonomy) must wait via the ctx-aware " +
		"backoff helper, not bare time.Sleep / clock Sleep, so cancellation interrupts the backoff",
	Run: runRetryCtx,
}

// retryTaxonomyNames mark a loop body as retry logic wherever they
// appear, bare or selector-qualified (Classify / fault.Classify /
// readopt re-exports alike).
var retryTaxonomyNames = map[string]bool{
	"Classify":      true,
	"IsTransient":   true,
	"ErrTransient":  true,
	"KindTransient": true,
}

func runRetryCtx(pass *Pass) error {
	if strings.HasSuffix(pass.PkgPath, "internal/fault") {
		return nil // the package that defines the backoff helper
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch s := n.(type) {
			case *ast.ForStmt:
				body = s.Body
			case *ast.RangeStmt:
				body = s.Body
			default:
				return true
			}
			if !mentionsRetryTaxonomy(body) {
				return true
			}
			reportBlindSleeps(pass, body)
			return true
		})
	}
	return nil
}

// mentionsRetryTaxonomy reports whether the loop body (including nested
// literals — a retry closure is still a retry loop) names the failure
// taxonomy.
func mentionsRetryTaxonomy(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.Ident:
			if retryTaxonomyNames[x.Name] {
				found = true
			}
		case *ast.SelectorExpr:
			if retryTaxonomyNames[x.Sel.Name] {
				found = true
				return false
			}
		}
		return !found
	})
	return found
}

// reportBlindSleeps flags every Sleep call in the loop body whose first
// argument is not a context.Context. Function literals are skipped: a
// goroutine's nap does not block the retry path.
func reportBlindSleeps(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Sleep" {
			return true
		}
		if len(call.Args) > 0 {
			if tv, ok := pass.TypesInfo.Types[call.Args[0]]; ok && isContextType(tv.Type) {
				return true // the ctx-aware backoff helper
			}
		}
		pass.Reportf(call.Pos(), "context-blind sleep in a retry loop: use the backoff helper "+
			"(Backoff.Sleep(ctx, clk, attempt)) so cancellation interrupts the wait")
		return true
	})
}
