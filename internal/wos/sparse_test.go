package wos

import (
	"context"
	"encoding/binary"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"github.com/readoptdb/readopt/internal/cpumodel"
	"github.com/readoptdb/readopt/internal/exec"
	"github.com/readoptdb/readopt/internal/schema"
	"github.com/readoptdb/readopt/internal/store"
)

// checkSparseAgainstFile re-reads every live run of the store's current
// version and asserts the manifest's sparse index is exactly what the
// data says: Sparse[p] is the first key on page p, SparseMax[p] the
// last, and pages are key-sorted end to end. It is the property the
// key-range pruning path relies on, checked from the raw file bytes —
// independently of the production verifier.
func checkSparseAgainstFile(t *testing.T, s *Store) {
	t.Helper()
	sn := s.Snapshot()
	defer sn.Release()
	sch := s.sch
	width := sch.Width()
	for _, r := range sn.v.runs {
		m := r.meta
		if len(m.Sparse) != m.Pages || len(m.SparseMax) != m.Pages {
			t.Fatalf("run %s: sparse %d / sparse_max %d entries, want %d pages",
				m.File, len(m.Sparse), len(m.SparseMax), m.Pages)
		}
		f, err := os.Open(filepath.Join(r.dir, m.File))
		if err != nil {
			t.Fatal(err)
		}
		pg := make([]byte, m.PageSize)
		var prevLast int32
		for p := 0; p < m.Pages; p++ {
			if _, err := io.ReadFull(f, pg); err != nil {
				t.Fatalf("run %s page %d: %v", m.File, p, err)
			}
			count := int(binary.LittleEndian.Uint32(pg[8:]))
			if count <= 0 {
				t.Fatalf("run %s page %d holds %d tuples", m.File, p, count)
			}
			tuples := pg[runHeaderSize:]
			first := sch.Int32At(tuples, s.key)
			last := sch.Int32At(tuples[(count-1)*width:], s.key)
			for i := 1; i < count; i++ {
				if sch.Int32At(tuples[i*width:], s.key) < sch.Int32At(tuples[(i-1)*width:], s.key) {
					t.Fatalf("run %s page %d: keys out of order at row %d", m.File, p, i)
				}
			}
			if m.Sparse[p] != first {
				t.Fatalf("run %s sparse[%d] = %d, page starts with %d", m.File, p, m.Sparse[p], first)
			}
			if m.SparseMax[p] != last {
				t.Fatalf("run %s sparse_max[%d] = %d, page ends with %d", m.File, p, m.SparseMax[p], last)
			}
			if p > 0 && first < prevLast {
				t.Fatalf("run %s page %d starts with %d below previous page's last %d", m.File, p, first, prevLast)
			}
			prevLast = last
		}
		f.Close()
		if m.MinKey != m.Sparse[0] || m.MaxKey != prevLast {
			t.Fatalf("run %s min/max [%d, %d] disagree with pages [%d, %d]",
				m.File, m.MinKey, m.MaxKey, m.Sparse[0], prevLast)
		}
	}
}

// TestSparseIndexProperty drives the full run lifecycle — spills from
// random inserts, an explicit flush, a compaction, then more spills —
// and checks the sparse-index property after every phase, plus the
// production verifier via Fsck.
func TestSparseIndexProperty(t *testing.T) {
	sch := testSchema()
	s, err := Create(t.TempDir(), sch, store.Row, smallOpts(sch.Width()))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rng := rand.New(rand.NewSource(7))

	insert := func(n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			k := int32(rng.Intn(64)) // duplicates likely: the straddle case
			if err := s.Insert(mkTuple(sch, k, k)); err != nil {
				t.Fatal(err)
			}
		}
	}

	insert(100) // several 8-row spills
	checkSparseAgainstFile(t, s)
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	checkSparseAgainstFile(t, s)
	if err := s.Fsck(); err != nil {
		t.Fatalf("fsck after spills: %v", err)
	}

	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	insert(50)
	checkSparseAgainstFile(t, s)
	if err := s.Fsck(); err != nil {
		t.Fatalf("fsck after compaction and fresh spills: %v", err)
	}
}

// rangeRows drains a set of delta operators into (key, value) pairs.
func rangeRows(t *testing.T, ops []exec.Operator, sch *schema.Schema) [][2]int32 {
	t.Helper()
	var out [][2]int32
	for _, op := range ops {
		if err := op.Open(); err != nil {
			t.Fatal(err)
		}
		for {
			blk, err := op.Next()
			if err != nil {
				t.Fatal(err)
			}
			if blk == nil {
				break
			}
			for i := 0; i < blk.Len(); i++ {
				tu := blk.Tuple(i)
				out = append(out, [2]int32{sch.Int32At(tu, 0), sch.Int32At(tu, 1)})
			}
		}
		if err := op.Close(); err != nil {
			t.Fatal(err)
		}
	}
	return out
}

// TestOpenDeltaRangeEquivalence checks the key-range open against the
// plain open: for any window, the ranged rows restricted to [lo, hi]
// must equal the full rows restricted to [lo, hi] in order, pages must
// actually be pruned for narrow windows, and a run is charged entirely
// when the window misses it.
func TestOpenDeltaRangeEquivalence(t *testing.T) {
	sch := testSchema()
	s, err := Create(t.TempDir(), sch, store.Row, smallOpts(sch.Width()))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 97; i++ { // several runs plus a memtable remainder
		if err := s.Insert(mkTuple(sch, int32(i%50), int32(i))); err != nil {
			t.Fatal(err)
		}
	}
	sn := s.Snapshot()
	defer sn.Release()

	filter := func(rows [][2]int32, lo, hi int32) [][2]int32 {
		var out [][2]int32
		for _, r := range rows {
			if r[0] >= lo && r[0] <= hi {
				out = append(out, r)
			}
		}
		return out
	}
	windows := [][2]int32{{0, 49}, {10, 12}, {25, 25}, {48, 60}, {-5, -1}, {7, 3}}
	for _, w := range windows {
		lo, hi := w[0], w[1]
		fullOps, err := sn.OpenDelta(context.Background(), nil)
		if err != nil {
			t.Fatal(err)
		}
		full := filter(rangeRows(t, fullOps, sch), lo, hi)
		ctr := new(cpumodel.Counters)
		rangedOps, err := sn.OpenDeltaRange(context.Background(), ctr, lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		ranged := filter(rangeRows(t, rangedOps, sch), lo, hi)
		if len(full) != len(ranged) {
			t.Fatalf("window [%d, %d]: ranged open sees %d rows, full open %d", lo, hi, len(ranged), len(full))
		}
		for i := range full {
			if full[i] != ranged[i] {
				t.Fatalf("window [%d, %d]: row %d differs: %v vs %v", lo, hi, i, ranged[i], full[i])
			}
		}
		narrow := hi < lo || hi-lo < 40
		if narrow && ctr.PagesPruned == 0 {
			t.Errorf("window [%d, %d]: no pages pruned", lo, hi)
		}
		if ctr.BytesSkipped != ctr.PagesPruned*int64(s.opts.RunPageSize) {
			t.Errorf("window [%d, %d]: skipped %d bytes for %d pruned pages", lo, hi, ctr.BytesSkipped, ctr.PagesPruned)
		}
	}
}
