package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// BitWidth guards the packing kernels. Every fixed-length code in the
// engine is moved with shift instructions; a shift whose width operand
// can exceed 64 silently evaluates to a wrong mask in Go (1<<64 == 0 for
// uint64), which is exactly the kind of mis-applied compression
// invariant that destroys the tradeoff curves instead of crashing.
//
// In the bitio and compress packages, the width operand of every shift
// must be provably in [0, 64]:
//
//   - a constant in range, or
//   - a masked/mod expression (x & c with c <= 63, x % c with c <= 65), or
//   - an identifier the function has validated: range-checked by an
//     early `if w < lo || w > hi` guard (hi <= 64), passed to the
//     readoptdebug assertion assertWidth/assertCodeWidth, or assigned
//     only from already-validated expressions.
//
// Widening code paths (dictionary indexes, FOR deltas) that build masks
// from a configured bit count must therefore route through a checked
// helper; the readoptdebug build verifies the same bound at run time.
var BitWidth = &Analyzer{
	Name: "bitwidth",
	Doc: "flags shift operands in bitio/compress not provably in [0,64]; validate the width " +
		"with a range check or assertWidth (readoptdebug) before shifting",
	Run: runBitWidth,
}

// widthAssertFuncs mark an identifier as validated when it is passed to
// them; the readoptdebug build turns them into real range checks.
var widthAssertFuncs = map[string]bool{
	"assertWidth":     true,
	"assertCodeWidth": true,
}

func runBitWidth(pass *Pass) error {
	if pass.PkgName != "bitio" && pass.PkgName != "compress" {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkShiftWidths(pass, fd)
		}
	}
	return nil
}

func checkShiftWidths(pass *Pass, fd *ast.FuncDecl) {
	validated := collectValidated(pass, fd)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		var width ast.Expr
		switch n := n.(type) {
		case *ast.BinaryExpr:
			if n.Op == token.SHL || n.Op == token.SHR {
				width = n.Y
			}
		case *ast.AssignStmt:
			if n.Tok == token.SHL_ASSIGN || n.Tok == token.SHR_ASSIGN {
				width = n.Rhs[0]
			}
		}
		if width == nil {
			return true
		}
		if !widthBounded(pass, width, validated) {
			pass.Reportf(width.Pos(),
				"shift width %s is not provably in [0,64]: range-check it or pass it through assertWidth (a readoptdebug assertion) before shifting",
				exprString(pass, width))
		}
		return true
	})
}

// widthBounded reports whether e is provably in [0, 64].
func widthBounded(pass *Pass, e ast.Expr, validated map[types.Object]bool) bool {
	e = unparen(e)
	// Constants.
	if tv, ok := pass.TypesInfo.Types[e]; ok && tv.Value != nil {
		if v, exact := constant.Int64Val(constant.ToInt(tv.Value)); exact {
			return v >= 0 && v <= 64
		}
		return false
	}
	switch e := e.(type) {
	case *ast.BinaryExpr:
		switch e.Op {
		case token.AND: // x & c, c <= 63
			return constAtMost(pass, e.X, 63) || constAtMost(pass, e.Y, 63)
		case token.REM: // x % c, c <= 65 (result < c for non-negative x)
			return constAtMost(pass, e.Y, 65)
		case token.SUB: // c - bounded stays in range for c <= 64
			return constAtMost(pass, e.X, 64) && widthBounded(pass, e.Y, validated)
		}
	case *ast.Ident:
		if obj := pass.TypesInfo.Uses[e]; obj != nil && validated[obj] {
			return true
		}
	case *ast.CallExpr:
		// min(x, c) with any bounded argument is bounded.
		if ident, ok := unparen(e.Fun).(*ast.Ident); ok {
			if b, isBuiltin := pass.TypesInfo.Uses[ident].(*types.Builtin); isBuiltin && b.Name() == "min" {
				for _, arg := range e.Args {
					if widthBounded(pass, arg, validated) {
						return true
					}
				}
			}
		}
	}
	return false
}

// constAtMost reports whether e is an integer constant <= limit (and >= 0).
func constAtMost(pass *Pass, e ast.Expr, limit int64) bool {
	tv, ok := pass.TypesInfo.Types[unparen(e)]
	if !ok || tv.Value == nil {
		return false
	}
	v, exact := constant.Int64Val(constant.ToInt(tv.Value))
	return exact && v >= 0 && v <= limit
}

// collectValidated walks the function once and gathers identifiers whose
// value is known to be a legal shift width anywhere in the body:
// range-check guards, assertWidth calls, and assignments from expressions
// that are themselves bounded. An identifier later reassigned from an
// unbounded expression loses its status.
func collectValidated(pass *Pass, fd *ast.FuncDecl) map[types.Object]bool {
	validated := map[types.Object]bool{}
	poisoned := map[types.Object]bool{}

	markIdent := func(e ast.Expr, m map[types.Object]bool) {
		if ident, ok := unparen(e).(*ast.Ident); ok {
			if obj := pass.TypesInfo.Uses[ident]; obj != nil {
				m[obj] = true
			} else if obj := pass.TypesInfo.Defs[ident]; obj != nil {
				m[obj] = true
			}
		}
	}

	// Pass 1: guards and assertions establish validated identifiers.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.IfStmt:
			for _, e := range rangeCheckedIdents(pass, n.Cond) {
				markIdent(e, validated)
			}
		case *ast.CallExpr:
			if ident, ok := unparen(n.Fun).(*ast.Ident); ok && widthAssertFuncs[ident.Name] {
				for _, arg := range n.Args {
					markIdent(arg, validated)
				}
			}
		}
		return true
	})

	// Pass 2 (iterate to a fixed point): assignments from bounded
	// expressions extend the set; assignments from unbounded ones poison.
	// growingAssignOps are compound assignments that can push a
	// non-negative value past 64; shrinking ones (-=, >>=, &=, %=, /=)
	// cannot and are left alone.
	growingAssignOps := map[token.Token]bool{
		token.ADD_ASSIGN: true, token.MUL_ASSIGN: true, token.SHL_ASSIGN: true,
		token.OR_ASSIGN: true, token.XOR_ASSIGN: true,
	}
	poison := func(obj types.Object) bool {
		if validated[obj] && !rangeGuardedLater(pass, fd, obj) {
			// Mutated past the provable bound after being validated by
			// assignment only: poison unless an explicit guard or
			// assertion re-establishes the bound.
			poisoned[obj] = true
			delete(validated, obj)
			return true
		}
		return false
	}
	for changed := true; changed; {
		changed = false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.IncDecStmt:
				if n.Tok == token.INC {
					if ident, ok := unparen(n.X).(*ast.Ident); ok {
						if obj := pass.TypesInfo.Uses[ident]; obj != nil && poison(obj) {
							changed = true
						}
					}
				}
			case *ast.AssignStmt:
				assign := n
				if growingAssignOps[assign.Tok] {
					for _, lhs := range assign.Lhs {
						if ident, ok := unparen(lhs).(*ast.Ident); ok {
							if obj := pass.TypesInfo.Uses[ident]; obj != nil && poison(obj) {
								changed = true
							}
						}
					}
					return true
				}
				if len(assign.Lhs) != len(assign.Rhs) {
					return true
				}
				for i, lhs := range assign.Lhs {
					ident, ok := unparen(lhs).(*ast.Ident)
					if !ok {
						continue
					}
					obj := pass.TypesInfo.Defs[ident]
					if obj == nil {
						obj = pass.TypesInfo.Uses[ident]
					}
					if obj == nil || poisoned[obj] {
						continue
					}
					switch assign.Tok {
					case token.ASSIGN, token.DEFINE:
						if widthBounded(pass, assign.Rhs[i], validated) {
							if !validated[obj] {
								validated[obj] = true
								changed = true
							}
						} else if poison(obj) {
							changed = true
						}
					}
				}
			}
			return true
		})
	}
	for obj := range poisoned {
		delete(validated, obj)
	}
	return validated
}

// rangeGuardedLater reports whether obj is covered by an explicit guard
// or assertion (not just a bounded assignment), which keeps it validated
// across reassignments like `width -= n` in a packing loop.
func rangeGuardedLater(pass *Pass, fd *ast.FuncDecl, obj types.Object) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.IfStmt:
			for _, e := range rangeCheckedIdents(pass, n.Cond) {
				if ident, ok := unparen(e).(*ast.Ident); ok && pass.TypesInfo.Uses[ident] == obj {
					found = true
				}
			}
		case *ast.CallExpr:
			if ident, ok := unparen(n.Fun).(*ast.Ident); ok && widthAssertFuncs[ident.Name] {
				for _, arg := range n.Args {
					if ai, ok := unparen(arg).(*ast.Ident); ok && pass.TypesInfo.Uses[ai] == obj {
						found = true
					}
				}
			}
		}
		return !found
	})
	return found
}

// rangeCheckedIdents extracts identifiers that a guard condition proves
// in range when the guarded branch aborts: `w < lo || w > hi` (hi <= 64)
// or `w > hi` alone. The caller treats the whole if statement as the
// guard; the suite's convention is that such guards panic or return.
func rangeCheckedIdents(pass *Pass, cond ast.Expr) []ast.Expr {
	cond = unparen(cond)
	be, ok := cond.(*ast.BinaryExpr)
	if !ok {
		return nil
	}
	if be.Op == token.LOR {
		return append(rangeCheckedIdents(pass, be.X), rangeCheckedIdents(pass, be.Y)...)
	}
	// w > hi  or  hi < w, with hi <= 64
	if be.Op == token.GTR || be.Op == token.GEQ {
		if constAtMost(pass, be.Y, 64) {
			return []ast.Expr{be.X}
		}
	}
	if be.Op == token.LSS || be.Op == token.LEQ {
		if constAtMost(pass, be.X, 64) {
			return []ast.Expr{be.Y}
		}
	}
	return nil
}

func exprString(pass *Pass, e ast.Expr) string {
	// Positions give the context; a compact rendering is enough.
	switch e := unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		if x, ok := e.X.(*ast.Ident); ok {
			return x.Name + "." + e.Sel.Name
		}
		return "(...)." + e.Sel.Name
	default:
		return "expression"
	}
}
