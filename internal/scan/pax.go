package scan

import (
	"fmt"
	"io"

	"github.com/readoptdb/readopt/internal/exec"
	"github.com/readoptdb/readopt/internal/fault"
	"github.com/readoptdb/readopt/internal/page"
	"github.com/readoptdb/readopt/internal/schema"
)

// PAXScanner scans a PAX-layout table: a single file (so disk I/O is
// exactly the row store's) whose pages organize values column-major. The
// scanner only touches the minipages of the attributes the query needs,
// giving it the column store's memory and decompression behaviour at the
// row store's I/O cost — the tradeoff the paper's related-work section
// attributes to PAX.
type PAXScanner struct {
	cfg   RowConfig // same configuration shape as the row scanner
	sch   *schema.Schema
	out   *schema.Schema
	preds map[int][]exec.Predicate
	pr    *page.PAXReader

	block *exec.Block

	unit      []byte
	unitOff   int
	pg        []byte
	pgPos     int
	pgCount   int
	pagesRead int64
	eof       bool
	opened    bool

	// Whole-page value arrays for predicate attributes and for
	// sequential-only (FOR-delta) projected attributes.
	scratch   map[int][]byte
	deltaProj []int
	valBuf    []byte
}

// NewPAXScanner builds a scanner over PAX pages from the row-scan
// configuration (the table is a single file, as for the row layout).
func NewPAXScanner(cfg RowConfig) (*PAXScanner, error) {
	cfg.fill()
	s := cfg.Schema
	preds, err := splitPreds(s, cfg.Preds)
	if err != nil {
		return nil, err
	}
	out, err := projectSchema(s, cfg.Proj)
	if err != nil {
		return nil, err
	}
	if cfg.Reader == nil {
		return nil, fmt.Errorf("scan: PAX scanner needs a reader")
	}
	pr, err := page.NewPAXReader(s, cfg.PageSize, cfg.Dicts)
	if err != nil {
		return nil, err
	}
	r := &PAXScanner{
		cfg:     cfg,
		sch:     s,
		out:     out,
		preds:   preds,
		pr:      pr,
		block:   exec.NewBlock(out, cfg.BlockTuples),
		scratch: make(map[int][]byte),
	}
	needFull := map[int]bool{}
	for a := range preds {
		needFull[a] = true
	}
	maxSize := 0
	for _, a := range cfg.Proj {
		if s.Attrs[a].Enc == schema.FORDelta {
			r.deltaProj = append(r.deltaProj, a)
			needFull[a] = true
		}
		if s.Attrs[a].Type.Size > maxSize {
			maxSize = s.Attrs[a].Type.Size
		}
	}
	for a := range needFull {
		r.scratch[a] = make([]byte, pr.Capacity()*s.Attrs[a].Type.Size)
	}
	r.valBuf = make([]byte, maxSize+4)
	return r, nil
}

// Schema implements exec.Operator.
func (r *PAXScanner) Schema() *schema.Schema { return r.out }

// Open implements exec.Operator.
func (r *PAXScanner) Open() error {
	r.opened = true
	return nil
}

// Close implements exec.Operator.
func (r *PAXScanner) Close() error {
	r.opened = false
	if r.cfg.Keep != nil {
		settleUnreadPages(r.cfg.Counters, r.cfg.Keep, r.cfg.StartPage, r.pagesRead, r.cfg.SecPages, r.pr.Capacity())
	}
	return r.cfg.Reader.Close()
}

func (r *PAXScanner) nextPage() error {
	if r.eof {
		return io.EOF
	}
	if r.unitOff >= len(r.unit) {
		buf, err := r.cfg.Reader.Next()
		if err == io.EOF {
			r.eof = true
			if err := r.cfg.Integrity.checkComplete("PAX file", r.pagesRead); err != nil {
				return err
			}
			return io.EOF
		}
		if err != nil {
			return err
		}
		if len(buf)%r.cfg.PageSize != 0 {
			return fault.Corruptf("scan: PAX file: I/O unit of %d bytes is not whole pages", len(buf))
		}
		r.cfg.Counters.AddIO(int64(len(buf)))
		r.unit = buf
		r.unitOff = 0
	}
	r.pg = r.unit[r.unitOff : r.unitOff+r.cfg.PageSize]
	r.unitOff += r.cfg.PageSize
	if err := r.cfg.Integrity.verify("PAX file", r.pg, r.pagesRead); err != nil {
		return err
	}
	r.pagesRead++
	r.pgCount = page.Count(r.pg)
	if r.pgCount < 0 || r.pgCount > r.pr.Capacity() {
		return fault.Corruptf("scan: corrupt PAX page: count %d exceeds capacity %d", r.pgCount, r.pr.Capacity())
	}
	r.pgPos = 0
	if r.cfg.Keep != nil && r.pgCount > 0 {
		base := (r.cfg.StartPage + r.pagesRead - 1) * int64(r.pr.Capacity())
		if !KeepIntersects(r.cfg.Keep, base, base+int64(r.pgCount)) {
			// Zone-pruned page: cross it without decoding any minipages.
			r.cfg.Counters.AddPrunedPages(1)
			r.pgPos = r.pgCount
			return nil
		}
	}
	r.cfg.Counters.AddInstr(r.cfg.Costs.PageOverhead)
	r.cfg.Counters.AddPage()

	// Decode the needed-in-full attributes, charging only their
	// minipages — this is PAX's memory advantage over the row layout.
	for a, dst := range r.scratch {
		if _, err := r.pr.DecodeAttr(r.pg, a, dst, r.sch.Attrs[a].Type.Size); err != nil {
			return err
		}
		r.cfg.Counters.AddSeq(int64(r.pr.MinipageBytes(a, r.pgCount)))
		r.cfg.Counters.AddInstr(int64(r.pgCount) * r.cfg.Costs.DecodeCost(r.sch.Attrs[a].Enc))
	}
	// Projected attributes accessed per qualifying row stream their
	// minipages too (the hardware prefetcher catches the strided walk);
	// charge them proportionally to the expected touch, capped at the
	// minipage, using the same touched-line model as the column scanner.
	return nil
}

func (r *PAXScanner) evalPreds(i int) bool {
	for a, ps := range r.preds {
		size := r.sch.Attrs[a].Type.Size
		val := r.scratch[a][i*size : (i+1)*size]
		for k := range ps {
			r.cfg.Counters.AddInstr(r.cfg.Costs.Predicate)
			var ok bool
			if r.sch.Attrs[a].Type.Kind == schema.Int32 {
				ok = ps[k].EvalInt(int32(uint32(val[0]) | uint32(val[1])<<8 | uint32(val[2])<<16 | uint32(val[3])<<24))
			} else {
				ok = ps[k].EvalText(val)
			}
			if !ok {
				return false
			}
		}
	}
	return true
}

func (r *PAXScanner) project(i int, dst []byte) {
	copied := 0
	for k, a := range r.cfg.Proj {
		size := r.sch.Attrs[a].Type.Size
		out := dst[r.out.Offset(k) : r.out.Offset(k)+size]
		if sc, ok := r.scratch[a]; ok {
			copy(out, sc[i*size:(i+1)*size])
		} else {
			r.pr.ValueAt(r.pg, a, i, out)
			r.cfg.Counters.AddInstr(r.cfg.Costs.DecodeCost(r.sch.Attrs[a].Enc))
		}
		copied += size
	}
	r.cfg.Counters.AddInstr(int64(copied) * r.cfg.Costs.CopyPerByte)
	// One cache line per projected access, capped implicitly by the
	// minipage sizes (well below a line per value at 10% selectivity).
	r.cfg.Counters.AddSeq(int64(copied))
}

// Next implements exec.Operator.
//
//readopt:hotpath
func (r *PAXScanner) Next() (*exec.Block, error) {
	if !r.opened {
		return nil, errNextBeforeOpen
	}
	r.block.Reset()
	for !r.block.Full() {
		if r.pgPos >= r.pgCount {
			if err := r.nextPage(); err == io.EOF {
				break
			} else if err != nil {
				return nil, err
			}
			continue
		}
		r.cfg.Counters.AddInstr(r.cfg.Costs.TupleLoop)
		if r.evalPreds(r.pgPos) {
			r.project(r.pgPos, r.block.Alloc())
		}
		r.pgPos++
	}
	r.cfg.Counters.AddInstr(r.cfg.Costs.BlockOverhead)
	if r.block.Len() == 0 && r.eof && r.pgPos >= r.pgCount {
		return nil, nil
	}
	return r.block, nil
}
