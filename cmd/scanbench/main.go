// Command scanbench runs one real scan query against a loaded table and
// reports wall-clock time, throughput, and the engine's work accounting —
// a benchmarking tool for measuring the performance limit of TPC-H-style
// selection queries on this machine, in the spirit of the paper's
// published benchmark code.
//
//	dbgen -table orders -layout column -rows 2000000 -dir /tmp/ord
//	scanbench -dir /tmp/ord -cols 3 -selectivity 0.1
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/readoptdb/readopt"
)

func main() {
	dir := flag.String("dir", "", "table directory (required)")
	cols := flag.Int("cols", 1, "number of leading columns to select")
	selectivity := flag.Float64("selectivity", 0.10, "predicate selectivity on the first column (1 = no predicate)")
	repeat := flag.Int("repeat", 1, "number of scan repetitions")
	flag.Parse()

	if *dir == "" {
		fmt.Fprintln(os.Stderr, "scanbench: -dir is required")
		flag.Usage()
		os.Exit(2)
	}
	tbl, err := readopt.OpenTable(*dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "scanbench: %v\n", err)
		os.Exit(1)
	}
	all := tbl.Schema().Columns()
	if *cols < 1 || *cols > len(all) {
		fmt.Fprintf(os.Stderr, "scanbench: -cols must be in 1..%d\n", len(all))
		os.Exit(2)
	}
	q := readopt.Query{Select: all[:*cols]}
	if *selectivity < 1 {
		th, err := tbl.SelectivityThreshold(*selectivity)
		if err != nil {
			fmt.Fprintf(os.Stderr, "scanbench: %v\n", err)
			os.Exit(1)
		}
		q.Where = []readopt.Cond{{Column: all[0], Op: "<", Value: th}}
	}

	fmt.Printf("table %s (%s layout, %d rows, %d data bytes)\n",
		tbl.Schema().Name(), tbl.Layout(), tbl.Rows(), tbl.DataBytes())
	fmt.Printf("query: select %d cols, selectivity %.4f\n", *cols, *selectivity)

	for i := 0; i < *repeat; i++ {
		start := time.Now()
		rows, err := tbl.Query(q)
		if err != nil {
			fmt.Fprintf(os.Stderr, "scanbench: %v\n", err)
			os.Exit(1)
		}
		var n int64
		for rows.Next() {
			n++
		}
		if err := rows.Err(); err != nil {
			fmt.Fprintf(os.Stderr, "scanbench: %v\n", err)
			os.Exit(1)
		}
		elapsed := time.Since(start)
		stats := rows.Stats()
		rows.Close()
		rate := float64(tbl.Rows()) / elapsed.Seconds()
		fmt.Printf("run %d: %v, %.0f tuples/sec, %d qualifying, io %d bytes in %d requests, %d modelled instructions\n",
			i+1, elapsed.Round(time.Millisecond), rate, n, stats.IOBytes, stats.IORequests, stats.Instructions)
	}
}
