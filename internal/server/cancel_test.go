package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"github.com/readoptdb/readopt"
	"github.com/readoptdb/readopt/internal/fault"
)

// TestTimedOutParallelQueryReleasesSlots is the regression test for the
// server's cancellation path: a parallel query whose deadline expires
// mid-scan must abort the scan itself — not run to completion for
// nobody — and release the dispatch's worker slot plus every extra dop
// slot it reserved. Chaos-injected per-unit read latency makes the scan
// deterministically slower than the deadline.
func TestTimedOutParallelQueryReleasesSlots(t *testing.T) {
	tbl, err := readopt.GenerateTPCH(filepath.Join(t.TempDir(), "orders"), readopt.Orders(),
		readopt.ColumnLayout, 50_000, 7, readopt.LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Every I/O unit costs 20ms, so the scan cannot finish inside the
	// 10ms deadline; only an aborted execution explains a prompt drain.
	fault.EnableChaos(fault.Config{Seed: 1, LatencyRate: 1, Latency: 20 * time.Millisecond})
	defer fault.DisableChaos()

	s := New(Config{Workers: 4, MaxDop: 4})
	if err := s.AddTable("orders", tbl); err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(readopt.QueryRequest{
		Table:         "orders",
		Query:         readopt.Query{Select: []string{"O_ORDERKEY"}},
		Dop:           4,
		TimeoutMillis: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/query", bytes.NewReader(body)))
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("status = %d (%s), want 504", rec.Code, rec.Body.String())
	}

	// The abandoned dispatch must finish promptly (the scan aborts on the
	// dead context) and hand back every slot it held.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if n := len(s.workers); n != 0 {
		t.Errorf("%d worker slots still held after the dispatchers drained", n)
	}
	if st := s.Stats(); st.CancelledErrors == 0 {
		t.Errorf("stats = %+v, want the aborted execution counted as cancelled", st)
	}
}
