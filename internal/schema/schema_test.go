package schema

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestTypeValidate(t *testing.T) {
	cases := []struct {
		typ Type
		ok  bool
	}{
		{IntType, true},
		{Type{Kind: Int32, Size: 8}, false},
		{TextType(1), true},
		{TextType(69), true},
		{TextType(0), false},
		{TextType(-3), false},
		{Type{Kind: Kind(9), Size: 4}, false},
	}
	for _, c := range cases {
		err := c.typ.Validate()
		if (err == nil) != c.ok {
			t.Errorf("Validate(%v) = %v, want ok=%v", c.typ, err, c.ok)
		}
	}
}

func TestKindString(t *testing.T) {
	if Int32.String() != "int32" || Text.String() != "text" {
		t.Errorf("unexpected kind names: %q %q", Int32, Text)
	}
	if !strings.Contains(Kind(7).String(), "7") {
		t.Errorf("unknown kind should include numeric value, got %q", Kind(7))
	}
}

func TestEncodingString(t *testing.T) {
	want := map[Encoding]string{None: "raw", BitPack: "pack", Dict: "dict", FOR: "for", FORDelta: "delta"}
	for e, s := range want {
		if e.String() != s {
			t.Errorf("Encoding(%d).String() = %q, want %q", e, e.String(), s)
		}
	}
}

func TestAttributeValidate(t *testing.T) {
	cases := []struct {
		name string
		a    Attribute
		ok   bool
	}{
		{"plain int", Attribute{Name: "A", Type: IntType}, true},
		{"empty name", Attribute{Type: IntType}, false},
		{"pack in range", Attribute{Name: "A", Type: IntType, Enc: BitPack, Bits: 14}, true},
		{"pack zero bits", Attribute{Name: "A", Type: IntType, Enc: BitPack, Bits: 0}, false},
		{"pack too wide", Attribute{Name: "A", Type: IntType, Enc: BitPack, Bits: 33}, false},
		{"pack text", Attribute{Name: "A", Type: TextType(28), Enc: BitPack, Bits: 224}, true},
		{"dict text", Attribute{Name: "A", Type: TextType(25), Enc: Dict, Bits: 2}, true},
		{"for int", Attribute{Name: "A", Type: IntType, Enc: FOR, Bits: 16}, true},
		{"for text", Attribute{Name: "A", Type: TextType(4), Enc: FOR, Bits: 16}, false},
		{"delta int", Attribute{Name: "A", Type: IntType, Enc: FORDelta, Bits: 8}, true},
		{"delta too wide", Attribute{Name: "A", Type: IntType, Enc: FORDelta, Bits: 40}, false},
		{"bad encoding", Attribute{Name: "A", Type: IntType, Enc: Encoding(99), Bits: 8}, false},
	}
	for _, c := range cases {
		err := c.a.Validate()
		if (err == nil) != c.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestNewRejectsBadSchemas(t *testing.T) {
	if _, err := New("", []Attribute{{Name: "A", Type: IntType}}); err == nil {
		t.Error("empty table name accepted")
	}
	if _, err := New("T", nil); err == nil {
		t.Error("empty attribute list accepted")
	}
	if _, err := New("T", []Attribute{{Name: "A", Type: IntType}, {Name: "A", Type: IntType}}); err == nil {
		t.Error("duplicate attribute name accepted")
	}
	if _, err := New("T", []Attribute{{Name: "A", Type: TextType(0)}}); err == nil {
		t.Error("invalid attribute accepted")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew did not panic on invalid schema")
		}
	}()
	MustNew("", nil)
}

// TestPaperWidths pins the exact tuple sizes reported in the paper's
// Section 3.1 and Figure 5.
func TestPaperWidths(t *testing.T) {
	cases := []struct {
		s           *Schema
		width       int
		storedWidth int
		nattrs      int
	}{
		{Lineitem(), 150, 152, 16},
		{Orders(), 32, 32, 7},
	}
	for _, c := range cases {
		if got := c.s.Width(); got != c.width {
			t.Errorf("%s Width() = %d, want %d", c.s.Name, got, c.width)
		}
		if got := c.s.StoredWidth(); got != c.storedWidth {
			t.Errorf("%s StoredWidth() = %d, want %d", c.s.Name, got, c.storedWidth)
		}
		if got := c.s.NumAttrs(); got != c.nattrs {
			t.Errorf("%s NumAttrs() = %d, want %d", c.s.Name, got, c.nattrs)
		}
	}
}

// TestPaperCompressedWidths pins the compressed tuple sizes of Figure 5:
// LINEITEM-Z at 52 bytes and ORDERS-Z at 12 bytes.
func TestPaperCompressedWidths(t *testing.T) {
	if got := LineitemZ().CompressedWidth(); got != 52 {
		t.Errorf("LINEITEM-Z CompressedWidth() = %d, want 52", got)
	}
	if got := OrdersZ().CompressedWidth(); got != 12 {
		t.Errorf("ORDERS-Z CompressedWidth() = %d, want 12", got)
	}
	if !LineitemZ().Compressed() || !OrdersZ().Compressed() {
		t.Error("compressed schemas should report Compressed() == true")
	}
	if Lineitem().Compressed() || Orders().Compressed() {
		t.Error("uncompressed schemas should report Compressed() == false")
	}
}

func TestOffsetsAreContiguous(t *testing.T) {
	for _, s := range []*Schema{Lineitem(), Orders(), LineitemZ(), OrdersZ()} {
		off := 0
		bits := 0
		for i, a := range s.Attrs {
			if got := s.Offset(i); got != off {
				t.Errorf("%s attr %d Offset = %d, want %d", s.Name, i, got, off)
			}
			if got := s.BitOffset(i); got != bits {
				t.Errorf("%s attr %d BitOffset = %d, want %d", s.Name, i, got, bits)
			}
			off += a.Type.Size
			bits += a.CodeBits()
		}
		if s.TotalBits() != bits {
			t.Errorf("%s TotalBits() = %d, want %d", s.Name, s.TotalBits(), bits)
		}
	}
}

func TestSelectedBytesMatchesFigure6Spacing(t *testing.T) {
	// The paper's Figure 6 x-axis: selecting the first 8 LINEITEM
	// attributes reads 26 bytes per row; 9 attributes reads 51 bytes.
	li := Lineitem()
	proj8 := []int{0, 1, 2, 3, 4, 5, 6, 7}
	if got := li.SelectedBytes(proj8); got != 26 {
		t.Errorf("SelectedBytes(first 8) = %d, want 26", got)
	}
	proj9 := append(proj8, 8)
	if got := li.SelectedBytes(proj9); got != 51 {
		t.Errorf("SelectedBytes(first 9) = %d, want 51", got)
	}
	all := make([]int, li.NumAttrs())
	for i := range all {
		all[i] = i
	}
	if got := li.SelectedBytes(all); got != 150 {
		t.Errorf("SelectedBytes(all) = %d, want 150", got)
	}
}

func TestSelectedCodeBits(t *testing.T) {
	oz := OrdersZ()
	if got := oz.SelectedCodeBits([]int{OOrderDate}); got != 14 {
		t.Errorf("SelectedCodeBits(O_ORDERDATE) = %d, want 14", got)
	}
	all := []int{0, 1, 2, 3, 4, 5, 6}
	if got := oz.SelectedCodeBits(all); got != oz.TotalBits() {
		t.Errorf("SelectedCodeBits(all) = %d, want %d", got, oz.TotalBits())
	}
}

func TestProject(t *testing.T) {
	o := Orders()
	p, err := o.Project([]int{OOrderKey, OTotalPrice})
	if err != nil {
		t.Fatal(err)
	}
	if p.NumAttrs() != 2 || p.Width() != 8 {
		t.Errorf("projected schema = %d attrs, %d bytes; want 2 attrs, 8 bytes", p.NumAttrs(), p.Width())
	}
	if p.Attrs[0].Name != "O_ORDERKEY" || p.Attrs[1].Name != "O_TOTALPRICE" {
		t.Errorf("projected attribute order wrong: %v", p.Attrs)
	}
	if _, err := o.Project([]int{99}); err == nil {
		t.Error("out-of-range projection accepted")
	}
}

func TestAttrIndex(t *testing.T) {
	o := Orders()
	if got := o.AttrIndex("O_CUSTKEY"); got != OCustKey {
		t.Errorf("AttrIndex(O_CUSTKEY) = %d, want %d", got, OCustKey)
	}
	if got := o.AttrIndex("NOPE"); got != -1 {
		t.Errorf("AttrIndex(NOPE) = %d, want -1", got)
	}
}

func TestTupleAccessors(t *testing.T) {
	o := Orders()
	tuple := make([]byte, o.Width())
	o.PutInt32At(tuple, OOrderKey, -123456)
	o.PutInt32At(tuple, OTotalPrice, 789)
	o.PutTextAt(tuple, OOrderStatus, []byte("F"))
	o.PutTextAt(tuple, OOrderPriority, []byte("1-URGENT"))
	if got := o.Int32At(tuple, OOrderKey); got != -123456 {
		t.Errorf("Int32At(orderkey) = %d, want -123456", got)
	}
	if got := o.Int32At(tuple, OTotalPrice); got != 789 {
		t.Errorf("Int32At(totalprice) = %d, want 789", got)
	}
	if got := o.TextAt(tuple, OOrderStatus); !bytes.Equal(got, []byte("F")) {
		t.Errorf("TextAt(status) = %q, want \"F\"", got)
	}
	if got := o.TextAt(tuple, OOrderPriority); !bytes.Equal(got, []byte("1-URGENT   ")) {
		t.Errorf("TextAt(priority) = %q, want padded \"1-URGENT   \"", got)
	}
	// Truncation of over-long text.
	o.PutTextAt(tuple, OOrderStatus, []byte("FULL"))
	if got := o.TextAt(tuple, OOrderStatus); !bytes.Equal(got, []byte("F")) {
		t.Errorf("TextAt after over-long put = %q, want \"F\"", got)
	}
}

// Property: Int32At(PutInt32At(v)) == v for any v and any integer slot.
func TestInt32RoundTripProperty(t *testing.T) {
	li := Lineitem()
	tuple := make([]byte, li.Width())
	f := func(v int32) bool {
		for _, i := range []int{LPartKey, LOrderKey, LDiscount, LReceiptDate} {
			li.PutInt32At(tuple, i, v)
			if li.Int32At(tuple, i) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStringRendering(t *testing.T) {
	s := OrdersZ().String()
	for _, want := range []string{"ORDERS-Z (32 bytes)", "O_ORDERKEY", "delta, 8 bits", "dict, 3 bits"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q in:\n%s", want, s)
		}
	}
	u := Orders().String()
	if !strings.Contains(u, "text(11)") {
		t.Errorf("String() missing text type in:\n%s", u)
	}
}

func TestOrdersZFORVariant(t *testing.T) {
	f := OrdersZFOR()
	if f.Attrs[OOrderKey].Enc != FOR || f.Attrs[OOrderKey].Bits != 16 {
		t.Errorf("OrdersZFOR orderkey = %v/%d, want for/16", f.Attrs[OOrderKey].Enc, f.Attrs[OOrderKey].Bits)
	}
	// All other attributes identical to OrdersZ.
	z := OrdersZ()
	for i := range z.Attrs {
		if i == OOrderKey {
			continue
		}
		if f.Attrs[i] != z.Attrs[i] {
			t.Errorf("attr %d differs between OrdersZ and OrdersZFOR: %v vs %v", i, z.Attrs[i], f.Attrs[i])
		}
	}
}
