package bitio

import "encoding/binary"

// This file holds the word-at-a-time batch unpacking kernels behind the
// engine's vectorized scan path. ReadAt decodes one code per call with a
// byte loop; the kernels below decode a whole run of fixed-width codes
// with one unaligned 64-bit load per code, which is what makes
// operate-on-compressed predicate evaluation cheaper than tuple-at-a-time
// decoding.

// UnpackBlock unpacks n fixed-width codes from buf, starting at bit
// offset off, into dst[0:n]. width must be in 1..64 and the source range
// must lie within buf; violations panic, as for ReadAt. dst must hold at
// least n entries.
//
// Codes of up to 57 bits are read with a single unaligned 64-bit load
// each (any bit phase 0..7 still fits the word); wider codes, and the
// last few codes of a buffer where a full word would read past the end,
// fall back to ReadAt.
//
//readopt:hotpath
func UnpackBlock(buf []byte, off, width, n int, dst []uint64) {
	if width < 1 || width > 64 {
		panic("bitio: UnpackBlock width out of range")
	}
	if n < 0 || off < 0 || off+n*width > len(buf)*8 {
		panic("bitio: UnpackBlock out of bounds")
	}
	if len(dst) < n {
		panic("bitio: UnpackBlock destination too small")
	}
	mask := ^uint64(0)
	if width < 64 {
		mask = 1<<width - 1
	}
	i := 0
	if width <= 57 {
		for ; i < n; i++ {
			o := off + i*width
			b := o >> 3
			if b+8 > len(buf) {
				break
			}
			dst[i] = binary.LittleEndian.Uint64(buf[b:]) >> (o & 7) & mask
		}
	}
	for ; i < n; i++ {
		dst[i] = ReadAt(buf, off+i*width, width)
	}
}

// UnpackInt32 unpacks n fixed-width codes from buf, starting at bit
// offset off, adds base to each, and stores the results as little-endian
// int32 values into dst at the given stride — the fused decode kernel of
// the bit-packed and frame-of-reference codecs. width must be in 1..32;
// dst must hold n values at the stride; stride must cover an int32.
//
//readopt:hotpath
func UnpackInt32(buf []byte, off, width, n int, base int32, dst []byte, stride int) {
	if width < 1 || width > 32 {
		panic("bitio: UnpackInt32 width out of range")
	}
	if n < 0 || off < 0 || off+n*width > len(buf)*8 {
		panic("bitio: UnpackInt32 out of bounds")
	}
	if stride < 4 {
		panic("bitio: UnpackInt32 stride too small")
	}
	if n > 0 && (n-1)*stride+4 > len(dst) {
		panic("bitio: UnpackInt32 destination too small")
	}
	mask := uint64(1)<<width - 1
	i := 0
	for ; i < n; i++ {
		o := off + i*width
		b := o >> 3
		if b+8 > len(buf) {
			break
		}
		v := binary.LittleEndian.Uint64(buf[b:]) >> (o & 7) & mask
		binary.LittleEndian.PutUint32(dst[i*stride:], uint32(base)+uint32(v))
	}
	for ; i < n; i++ {
		v := ReadAt(buf, off+i*width, width)
		binary.LittleEndian.PutUint32(dst[i*stride:], uint32(base)+uint32(v))
	}
}
