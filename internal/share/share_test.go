package share

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"github.com/readoptdb/readopt/internal/aio"
	"github.com/readoptdb/readopt/internal/cpumodel"
	"github.com/readoptdb/readopt/internal/exec"
	"github.com/readoptdb/readopt/internal/scan"
	"github.com/readoptdb/readopt/internal/schema"
	"github.com/readoptdb/readopt/internal/store"
	"github.com/readoptdb/readopt/internal/tpch"
)

const testN = 10000

type fileReader struct {
	*aio.OSReader
	f *os.File
}

func (r *fileReader) Close() error {
	err := r.OSReader.Close()
	if cerr := r.f.Close(); err == nil {
		err = cerr
	}
	return err
}

func openOS(t *testing.T, path string) aio.Reader {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	r, err := aio.NewOSReader(f, 64<<10, 4)
	if err != nil {
		t.Fatal(err)
	}
	return &fileReader{OSReader: r, f: f}
}

// sharedScan builds a row scan over all ORDERS attributes with the given
// counters — the single stream the queries share.
func sharedScan(t *testing.T, tbl *store.Table, counters *cpumodel.Counters) exec.Operator {
	t.Helper()
	s, err := scan.NewRowScanner(scan.RowConfig{
		Schema:   tbl.Schema,
		PageSize: tbl.PageSize,
		Reader:   openOS(t, tbl.RowPath()),
		Proj:     []int{0, 1, 2, 3, 4, 5, 6},
		Counters: counters,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func loadOrders(t *testing.T) *store.Table {
	t.Helper()
	tbl, err := store.LoadSynthetic(filepath.Join(t.TempDir(), "o"), schema.Orders(), store.Row, 4096, 1, testN)
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

// runSolo evaluates one shared-style query through the ordinary engine
// path, as the reference.
func runSolo(t *testing.T, tbl *store.Table, q Query) Result {
	t.Helper()
	s, err := scan.NewRowScanner(scan.RowConfig{
		Schema:   tbl.Schema,
		PageSize: tbl.PageSize,
		Reader:   openOS(t, tbl.RowPath()),
		Preds:    q.Preds,
		Proj:     q.Proj,
	})
	if err != nil {
		t.Fatal(err)
	}
	var op exec.Operator = s
	if len(q.Aggs) > 0 {
		op, err = exec.NewHashAggregate(s, q.GroupBy, q.Aggs, nil)
		if err != nil {
			t.Fatal(err)
		}
	}
	tuples, err := exec.Collect(op)
	if err != nil {
		t.Fatal(err)
	}
	return Result{Schema: op.Schema(), Tuples: tuples}
}

func testQueries(t *testing.T, tbl *store.Table) []Query {
	t.Helper()
	th10, err := tpch.Threshold(tbl.Schema, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	th50, err := tpch.Threshold(tbl.Schema, 0.50)
	if err != nil {
		t.Fatal(err)
	}
	return []Query{
		// Plain selection.
		{
			Preds: []exec.Predicate{exec.IntPred(schema.OOrderDate, exec.Lt, th10)},
			Proj:  []int{schema.OOrderKey, schema.OTotalPrice},
		},
		// Aggregation with group-by.
		{
			Preds:   []exec.Predicate{exec.IntPred(schema.OOrderDate, exec.Lt, th50)},
			Proj:    []int{schema.OOrderStatus, schema.OTotalPrice},
			GroupBy: []int{0},
			Aggs:    []exec.AggSpec{{Func: exec.Count}, {Func: exec.Avg, Attr: 1}},
		},
		// Global aggregate, no predicate.
		{
			Proj: []int{schema.OTotalPrice},
			Aggs: []exec.AggSpec{{Func: exec.Count}, {Func: exec.Min, Attr: 0}, {Func: exec.Max, Attr: 0}},
		},
	}
}

// TestSharedMatchesSolo: every query of a shared pass produces exactly
// the result it produces when run alone.
func TestSharedMatchesSolo(t *testing.T) {
	tbl := loadOrders(t)
	queries := testQueries(t, tbl)
	results, err := Run(sharedScan(t, tbl, nil), queries, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(queries) {
		t.Fatalf("got %d results for %d queries", len(results), len(queries))
	}
	for i, q := range queries {
		solo := runSolo(t, tbl, q)
		if !bytes.Equal(results[i].Tuples, solo.Tuples) {
			t.Errorf("query %d: shared result differs from solo (%d vs %d tuples)",
				i, results[i].NumTuples(), solo.NumTuples())
		}
	}
}

// TestSharedReadsOnce: the table's pages are read once regardless of how
// many queries share the scan.
func TestSharedReadsOnce(t *testing.T) {
	tbl := loadOrders(t)
	var one, many cpumodel.Counters
	if _, err := Run(sharedScan(t, tbl, &one), testQueries(t, tbl)[:1], nil); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(sharedScan(t, tbl, &many), testQueries(t, tbl), nil); err != nil {
		t.Fatal(err)
	}
	if one.IOBytes != many.IOBytes {
		t.Errorf("shared scan I/O changed with query count: %d vs %d", one.IOBytes, many.IOBytes)
	}
	if one.IOBytes < testN*32 {
		t.Errorf("shared scan read %d bytes, want the whole table", one.IOBytes)
	}
}

func TestSharedCountsQueryWork(t *testing.T) {
	tbl := loadOrders(t)
	var counters cpumodel.Counters
	if _, err := Run(sharedScan(t, tbl, nil), testQueries(t, tbl), &counters); err != nil {
		t.Fatal(err)
	}
	if counters.Instr == 0 {
		t.Error("shared pass charged no per-query work")
	}
}

func TestSharedValidation(t *testing.T) {
	tbl := loadOrders(t)
	if _, err := Run(sharedScan(t, tbl, nil), []Query{{}}, nil); err == nil {
		t.Error("empty projection accepted")
	}
	bad := Query{Proj: []int{0}, Preds: []exec.Predicate{exec.IntPred(99, exec.Lt, 0)}}
	if _, err := Run(sharedScan(t, tbl, nil), []Query{bad}, nil); err == nil {
		t.Error("invalid predicate accepted")
	}
	agg := Query{Proj: []int{0}, Aggs: []exec.AggSpec{{Func: exec.Sum, Attr: 5}}}
	if _, err := Run(sharedScan(t, tbl, nil), []Query{agg}, nil); err == nil {
		t.Error("aggregate attribute out of projected range accepted")
	}
}

func TestSharedEmptyQueryList(t *testing.T) {
	tbl := loadOrders(t)
	results, err := Run(sharedScan(t, tbl, nil), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 0 {
		t.Errorf("expected no results, got %d", len(results))
	}
}
