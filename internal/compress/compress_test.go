package compress

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/readoptdb/readopt/internal/bitio"
	"github.com/readoptdb/readopt/internal/schema"
)

func intsToBytes(vals []int32) []byte {
	b := make([]byte, 4*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint32(b[4*i:], uint32(v))
	}
	return b
}

func bytesToInts(b []byte) []int32 {
	vals := make([]int32, len(b)/4)
	for i := range vals {
		vals[i] = int32(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return vals
}

// encodeDecode runs a full page round trip through the codec and returns
// the decoded raw bytes.
func encodeDecode(t *testing.T, c Codec, src []byte, stride, n int) []byte {
	t.Helper()
	buf := make([]byte, bitio.SizeBytes(n*c.Bits()))
	w := bitio.NewWriter(buf)
	base, err := c.EncodePage(w, src, stride, n)
	if err != nil {
		t.Fatalf("EncodePage: %v", err)
	}
	if w.Offset() != n*c.Bits() {
		t.Fatalf("EncodePage wrote %d bits, want %d", w.Offset(), n*c.Bits())
	}
	dst := make([]byte, len(src))
	if err := c.DecodePage(bitio.NewReader(buf), dst, stride, n, base); err != nil {
		t.Fatalf("DecodePage: %v", err)
	}
	return dst
}

func TestRawCodecRoundTrip(t *testing.T) {
	c, err := New(schema.Attribute{Name: "A", Type: schema.TextType(5)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if c.Encoding() != schema.None || c.Bits() != 40 || !c.RandomAccess() {
		t.Fatalf("raw codec properties wrong: %v %d %v", c.Encoding(), c.Bits(), c.RandomAccess())
	}
	src := []byte("helloworldtests")
	got := encodeDecode(t, c, src, 5, 3)
	if !bytes.Equal(got, src) {
		t.Errorf("raw round trip = %q, want %q", got, src)
	}
}

func TestBitPackIntRoundTrip(t *testing.T) {
	c, err := New(schema.Attribute{Name: "A", Type: schema.IntType, Enc: schema.BitPack, Bits: 10}, nil)
	if err != nil {
		t.Fatal(err)
	}
	vals := []int32{0, 1, 512, 1023, 7, 1000}
	src := intsToBytes(vals)
	got := bytesToInts(encodeDecode(t, c, src, 4, len(vals)))
	for i := range vals {
		if got[i] != vals[i] {
			t.Errorf("value %d = %d, want %d", i, got[i], vals[i])
		}
	}
}

func TestBitPackIntRejectsOutOfDomain(t *testing.T) {
	c, _ := New(schema.Attribute{Name: "A", Type: schema.IntType, Enc: schema.BitPack, Bits: 3}, nil)
	buf := make([]byte, 64)
	for _, bad := range []int32{8, -1, 1 << 20} {
		w := bitio.NewWriter(buf)
		if _, err := c.EncodePage(w, intsToBytes([]int32{bad}), 4, 1); err == nil {
			t.Errorf("EncodePage accepted out-of-domain value %d", bad)
		}
	}
}

func TestBitPackTextRoundTrip(t *testing.T) {
	c, err := New(schema.Attribute{Name: "A", Type: schema.TextType(10), Enc: schema.BitPack, Bits: 4 * 8}, nil)
	if err != nil {
		t.Fatal(err)
	}
	src := []byte("abcd      wxyz      ") // two 10-byte values, content <= 4 bytes
	got := encodeDecode(t, c, src, 10, 2)
	if !bytes.Equal(got, src) {
		t.Errorf("text pack round trip = %q, want %q", got, src)
	}
}

func TestBitPackTextRejectsLoss(t *testing.T) {
	c, _ := New(schema.Attribute{Name: "A", Type: schema.TextType(10), Enc: schema.BitPack, Bits: 4 * 8}, nil)
	buf := make([]byte, 64)
	w := bitio.NewWriter(buf)
	if _, err := c.EncodePage(w, []byte("abcdefgh  "), 10, 1); err == nil {
		t.Error("EncodePage accepted text losing non-padding bytes")
	}
}

func TestBitPackTextNeedsWholeBytes(t *testing.T) {
	if _, err := New(schema.Attribute{Name: "A", Type: schema.TextType(10), Enc: schema.BitPack, Bits: 13}, nil); err == nil {
		t.Error("New accepted text bit packing with fractional byte width")
	}
}

func TestDictCodecRoundTrip(t *testing.T) {
	dict := NewDictionary(1)
	c, err := New(schema.Attribute{Name: "A", Type: schema.TextType(1), Enc: schema.Dict, Bits: 2}, dict)
	if err != nil {
		t.Fatal(err)
	}
	src := []byte("NORNRONO")
	got := encodeDecode(t, c, src, 1, len(src))
	if !bytes.Equal(got, src) {
		t.Errorf("dict round trip = %q, want %q", got, src)
	}
	if dict.Len() != 3 {
		t.Errorf("dictionary grew to %d entries, want 3", dict.Len())
	}
}

func TestDictCodecOverflow(t *testing.T) {
	dict := NewDictionary(1)
	c, _ := New(schema.Attribute{Name: "A", Type: schema.TextType(1), Enc: schema.Dict, Bits: 2}, dict)
	buf := make([]byte, 64)
	w := bitio.NewWriter(buf)
	if _, err := c.EncodePage(w, []byte("ABCDE"), 1, 5); err == nil {
		t.Error("EncodePage accepted 5 distinct values into a 2-bit dictionary index")
	}
}

func TestDictCodecRequiresDictionary(t *testing.T) {
	if _, err := New(schema.Attribute{Name: "A", Type: schema.TextType(1), Enc: schema.Dict, Bits: 2}, nil); err == nil {
		t.Error("New accepted dict encoding without a dictionary")
	}
	wrong := NewDictionary(2)
	if _, err := New(schema.Attribute{Name: "A", Type: schema.TextType(1), Enc: schema.Dict, Bits: 2}, wrong); err == nil {
		t.Error("New accepted dictionary of mismatched width")
	}
}

func TestFORRoundTrip(t *testing.T) {
	c, err := New(schema.Attribute{Name: "A", Type: schema.IntType, Enc: schema.FOR, Bits: 16}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Paper example: sorted IDs 100.. stored as deltas from base 100.
	vals := []int32{100, 101, 102, 103, 150, 100}
	src := intsToBytes(vals)
	got := bytesToInts(encodeDecode(t, c, src, 4, len(vals)))
	for i := range vals {
		if got[i] != vals[i] {
			t.Errorf("value %d = %d, want %d", i, got[i], vals[i])
		}
	}
}

func TestFORBaseIsPageMin(t *testing.T) {
	c, _ := New(schema.Attribute{Name: "A", Type: schema.IntType, Enc: schema.FOR, Bits: 8}, nil)
	vals := []int32{50, 10, 40} // min is not first
	buf := make([]byte, 64)
	w := bitio.NewWriter(buf)
	base, err := c.EncodePage(w, intsToBytes(vals), 4, len(vals))
	if err != nil {
		t.Fatal(err)
	}
	if base != 10 {
		t.Errorf("FOR base = %d, want 10", base)
	}
}

func TestFOROverflow(t *testing.T) {
	c, _ := New(schema.Attribute{Name: "A", Type: schema.IntType, Enc: schema.FOR, Bits: 4}, nil)
	buf := make([]byte, 64)
	w := bitio.NewWriter(buf)
	if _, err := c.EncodePage(w, intsToBytes([]int32{0, 100}), 4, 2); err == nil {
		t.Error("EncodePage accepted FOR difference exceeding code width")
	}
}

func TestFORDeltaRoundTrip(t *testing.T) {
	c, err := New(schema.Attribute{Name: "A", Type: schema.IntType, Enc: schema.FORDelta, Bits: 8}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if c.RandomAccess() {
		t.Error("FOR-delta must not claim random access")
	}
	// Paper example: (100, 101, 102, 103) stored as (0, 1, 1, 1), base 100.
	vals := []int32{100, 101, 102, 103}
	buf := make([]byte, 64)
	w := bitio.NewWriter(buf)
	base, err := c.EncodePage(w, intsToBytes(vals), 4, len(vals))
	if err != nil {
		t.Fatal(err)
	}
	if base != 100 {
		t.Errorf("FOR-delta base = %d, want 100", base)
	}
	r := bitio.NewReader(buf)
	for i, want := range []uint64{0, 1, 1, 1} {
		if got := r.ReadBits(8); got != want {
			t.Errorf("code %d = %d, want %d", i, got, want)
		}
	}
	dst := make([]byte, 16)
	if err := c.DecodePage(bitio.NewReader(buf), dst, 4, 4, base); err != nil {
		t.Fatal(err)
	}
	for i, v := range bytesToInts(dst) {
		if v != vals[i] {
			t.Errorf("decoded %d = %d, want %d", i, v, vals[i])
		}
	}
}

func TestFORDeltaRejectsDecreasing(t *testing.T) {
	c, _ := New(schema.Attribute{Name: "A", Type: schema.IntType, Enc: schema.FORDelta, Bits: 8}, nil)
	buf := make([]byte, 64)
	w := bitio.NewWriter(buf)
	if _, err := c.EncodePage(w, intsToBytes([]int32{5, 3}), 4, 2); err == nil {
		t.Error("EncodePage accepted decreasing values for FOR-delta")
	}
	w = bitio.NewWriter(buf)
	if _, err := c.EncodePage(w, intsToBytes([]int32{0, 300}), 4, 2); err == nil {
		t.Error("EncodePage accepted delta exceeding code width")
	}
}

func TestFORDeltaDecodeAtPanics(t *testing.T) {
	c, _ := New(schema.Attribute{Name: "A", Type: schema.IntType, Enc: schema.FORDelta, Bits: 8}, nil)
	defer func() {
		if recover() == nil {
			t.Error("DecodeAt on FOR-delta did not panic")
		}
	}()
	c.DecodeAt(make([]byte, 8), 0, 0, 0, make([]byte, 4))
}

// TestDecodeAtMatchesDecodePage verifies random access against sequential
// decoding for every random-access codec.
func TestDecodeAtMatchesDecodePage(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	n := 257
	vals := make([]int32, n)
	for i := range vals {
		vals[i] = rng.Int31n(1 << 14)
	}
	src := intsToBytes(vals)

	dict := NewDictionary(4)
	lowCard := make([]int32, n)
	for i := range lowCard {
		lowCard[i] = rng.Int31n(7)
	}
	lowSrc := intsToBytes(lowCard)

	cases := []struct {
		name string
		attr schema.Attribute
		dict *Dictionary
		src  []byte
	}{
		{"raw", schema.Attribute{Name: "A", Type: schema.IntType}, nil, src},
		{"pack", schema.Attribute{Name: "A", Type: schema.IntType, Enc: schema.BitPack, Bits: 14}, nil, src},
		{"dict", schema.Attribute{Name: "A", Type: schema.IntType, Enc: schema.Dict, Bits: 3}, dict, lowSrc},
		{"for", schema.Attribute{Name: "A", Type: schema.IntType, Enc: schema.FOR, Bits: 15}, nil, src},
	}
	for _, tc := range cases {
		c, err := New(tc.attr, tc.dict)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		buf := make([]byte, bitio.SizeBytes(n*c.Bits()))
		w := bitio.NewWriter(buf)
		base, err := c.EncodePage(w, tc.src, 4, n)
		if err != nil {
			t.Fatalf("%s: EncodePage: %v", tc.name, err)
		}
		seq := make([]byte, len(tc.src))
		if err := c.DecodePage(bitio.NewReader(buf), seq, 4, n, base); err != nil {
			t.Fatalf("%s: DecodePage: %v", tc.name, err)
		}
		one := make([]byte, 4)
		for i := 0; i < n; i += 13 {
			c.DecodeAt(buf, 0, i, base, one)
			if !bytes.Equal(one, seq[4*i:4*i+4]) {
				t.Errorf("%s: DecodeAt(%d) = %x, want %x", tc.name, i, one, seq[4*i:4*i+4])
			}
		}
	}
}

// Property: every integer codec round-trips arbitrary in-domain pages.
func TestIntCodecRoundTripProperty(t *testing.T) {
	mk := func(attr schema.Attribute) Codec {
		var d *Dictionary
		if attr.Enc == schema.Dict {
			d = NewDictionary(4)
		}
		c, err := New(attr, d)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	pack := mk(schema.Attribute{Name: "A", Type: schema.IntType, Enc: schema.BitPack, Bits: 20})
	forc := mk(schema.Attribute{Name: "A", Type: schema.IntType, Enc: schema.FOR, Bits: 21})
	delta := mk(schema.Attribute{Name: "A", Type: schema.IntType, Enc: schema.FORDelta, Bits: 20})

	f := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 64 {
			raw = raw[:64]
		}
		inDomain := make([]int32, len(raw))
		sorted := make([]int32, len(raw))
		acc := int32(0)
		for i, r := range raw {
			inDomain[i] = int32(r % (1 << 20))
			acc += int32(r % 1000)
			sorted[i] = acc
		}
		for _, tc := range []struct {
			c    Codec
			vals []int32
		}{{pack, inDomain}, {forc, inDomain}, {delta, sorted}} {
			src := intsToBytes(tc.vals)
			buf := make([]byte, bitio.SizeBytes(len(tc.vals)*tc.c.Bits()))
			w := bitio.NewWriter(buf)
			base, err := tc.c.EncodePage(w, src, 4, len(tc.vals))
			if err != nil {
				return false
			}
			dst := make([]byte, len(src))
			if err := tc.c.DecodePage(bitio.NewReader(buf), dst, 4, len(tc.vals), base); err != nil {
				return false
			}
			if !bytes.Equal(dst, src) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestEmptyPages(t *testing.T) {
	for _, attr := range []schema.Attribute{
		{Name: "A", Type: schema.IntType, Enc: schema.FOR, Bits: 8},
		{Name: "A", Type: schema.IntType, Enc: schema.FORDelta, Bits: 8},
		{Name: "A", Type: schema.IntType, Enc: schema.BitPack, Bits: 8},
	} {
		c, err := New(attr, nil)
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 8)
		w := bitio.NewWriter(buf)
		if _, err := c.EncodePage(w, nil, 4, 0); err != nil {
			t.Errorf("%v: empty EncodePage failed: %v", attr.Enc, err)
		}
		if err := c.DecodePage(bitio.NewReader(buf), nil, 4, 0, 0); err != nil {
			t.Errorf("%v: empty DecodePage failed: %v", attr.Enc, err)
		}
	}
}

func TestNewRejectsInvalidAttribute(t *testing.T) {
	if _, err := New(schema.Attribute{Name: "", Type: schema.IntType}, nil); err == nil {
		t.Error("New accepted invalid attribute")
	}
}
