// Package hot is the dirty hotalloc fixture: one //readopt:hotpath
// function per banned construct, each line carrying its expectation.
package hot

import "fmt"

type iter struct {
	buf []byte
	out []int
	err error
}

func takes(v any) { _ = v }

var global any

// next allocates in every way the analyzer bans.
//
//readopt:hotpath
func (it *iter) next() error {
	if it.buf == nil {
		it.buf = make([]byte, 64) // want "make in hot path next"
	}
	it.out = append(it.out, 1) // want "append in hot path next"
	it.err = fmt.Errorf("bad") // want "fmt.Errorf in hot path next"
	return it.err
}

//readopt:hotpath
func (it *iter) deferred() {
	defer func() {}() // want "defer in hot path deferred" "closure in hot path deferred"
}

//readopt:hotpath
func (it *iter) literals() *iter {
	it.out = []int{1, 2} // want "slice literal in hot path literals"
	return &iter{}       // want "composite literal in hot path literals"
}

//readopt:hotpath
func (it *iter) str() string {
	return string(it.buf) // want "conversion in hot path str copies"
}

//readopt:hotpath
func (it *iter) boxExplicit(x int) {
	global = any(x) // want "conversion to interface in hot path boxExplicit"
}

//readopt:hotpath
func (it *iter) boxImplicit(x int) {
	takes(x) // want "argument boxed into interface parameter in hot path boxImplicit"
}

// cold is not annotated, so the same constructs pass unflagged.
func (it *iter) cold() error {
	it.buf = make([]byte, 64)
	it.out = append(it.out, 1)
	return fmt.Errorf("cold paths may allocate")
}
