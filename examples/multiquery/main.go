// Multi-query: scan sharing and the design advisor. A reporting dashboard
// fires several queries at the same fact table at once; with scan sharing
// (the paper's Section 2.1.1 optimization, as in Teradata/RedBrick) the
// table is read once for all of them. Afterwards, the physical-design
// advisor — the paper's Figure 1 compression + MV advisors — inspects the
// data and the workload and recommends a layout and per-column
// compression.
//
//	go run ./examples/multiquery
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"github.com/readoptdb/readopt"
)

func main() {
	dir, err := os.MkdirTemp("", "readopt-multiquery-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	const rows = 400_000
	tbl, err := readopt.GenerateTPCH(filepath.Join(dir, "orders"), readopt.Orders(), readopt.ColumnLayout, rows, 1, readopt.LoadOptions{})
	if err != nil {
		log.Fatal(err)
	}
	threshold, err := tbl.SelectivityThreshold(0.25)
	if err != nil {
		log.Fatal(err)
	}

	// The dashboard's three queries, answered from ONE shared pass.
	queries := []readopt.Query{
		{ // recent orders per status
			Where:   []readopt.Cond{{Column: "O_ORDERDATE", Op: "<", Value: threshold}},
			GroupBy: []string{"O_ORDERSTATUS"},
			Aggs:    []readopt.Agg{{Func: "count"}},
		},
		{ // pricing spread by priority
			GroupBy: []string{"O_ORDERPRIORITY"},
			Aggs:    []readopt.Agg{{Func: "min", Column: "O_TOTALPRICE"}, {Func: "max", Column: "O_TOTALPRICE"}},
		},
		{ // global row count
			Aggs: []readopt.Agg{{Func: "count"}},
		},
	}
	results, err := tbl.QueryBatch(queries)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("dashboard, one shared scan:")
	fmt.Println("- recent orders per status:")
	for results[0].Next() {
		var status string
		var n int
		if err := results[0].Scan(&status, &n); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("    %s: %d\n", status, n)
	}
	results[0].Close()
	fmt.Println("- price range per priority:")
	for results[1].Next() {
		var prio string
		var lo, hi int
		if err := results[1].Scan(&prio, &lo, &hi); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("    %-12s %7d .. %7d\n", prio, lo, hi)
	}
	results[1].Close()
	if results[2].Next() {
		var n int
		if err := results[2].Scan(&n); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("- total orders: %d\n", n)
	}
	stats := results[2].Stats()
	results[2].Close()
	fmt.Printf("  (all three queries together read %d bytes — one scan)\n\n", stats.IOBytes)

	// Ask the advisor how this table should be stored for this workload
	// on modern hardware.
	advice, err := tbl.AdviseDesign([]readopt.WorkloadQuery{
		{Columns: []string{"O_ORDERDATE", "O_ORDERSTATUS"}, Selectivity: 0.25, Weight: 10},
		{Columns: []string{"O_ORDERPRIORITY", "O_TOTALPRICE"}, Selectivity: 1.0, Weight: 3},
	}, readopt.Hardware{CPUs: 2, ClockGHz: 3.2, Disks: 1, DiskMBps: 120})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("advisor: store this table as a %s layout (predicted column speedup %.2fx)\n", advice.Layout, advice.Speedup)
	fmt.Printf("advisor: compress %d -> %d bytes per tuple:\n", advice.TupleBytes, advice.CompressedBytes)
	for _, c := range advice.Columns {
		if c.Compression == readopt.None {
			fmt.Printf("    %-16s keep raw\n", c.Name)
			continue
		}
		fmt.Printf("    %-16s %s, %d bits\n", c.Name, c.Compression, c.Bits)
	}
}
