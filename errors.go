package readopt

import "github.com/readoptdb/readopt/internal/fault"

// The engine's failure taxonomy. Every error a query can end with is
// classified into exactly one kind, and the sentinels below match via
// errors.Is — so callers branch on the kind, not on error strings:
//
//	rows, err := tbl.QueryExec(q, readopt.ExecOptions{Ctx: ctx})
//	switch {
//	case errors.Is(err, readopt.ErrCancelled): // ctx timeout/disconnect
//	case errors.Is(err, readopt.ErrCorrupt):   // data failed integrity checks
//	case errors.Is(err, readopt.ErrTransient): // retries exhausted; retryable
//	}
//
// The taxonomy is load-bearing for fault tolerance: a query under
// injected faults must either return byte-identical results or fail with
// one of these kinds — never silently wrong data.
var (
	// ErrTransient marks an I/O error that may succeed on retry (the scan
	// already retried it with backoff before surfacing it).
	ErrTransient = fault.ErrTransient
	// ErrCorrupt marks data that failed an integrity check: a page CRC
	// mismatch, a truncated file, a ragged I/O unit, or an impossible
	// page header. Never retried — rereading corrupt data cannot fix it.
	ErrCorrupt = fault.ErrCorrupt
	// ErrCancelled marks an execution stopped by its context; it also
	// matches context.Canceled or context.DeadlineExceeded, whichever
	// caused it.
	ErrCancelled = fault.ErrCancelled
)

// ErrorKind classifies err into the failure taxonomy for wire formats
// and metrics: "transient", "corrupt", "cancelled", "other" — or "" for
// nil. Plain context.Canceled / context.DeadlineExceeded classify as
// "cancelled" even when untagged.
func ErrorKind(err error) string { return string(fault.Classify(err)) }
