package wos

import (
	"context"
	"sort"
	"sync/atomic"

	"github.com/readoptdb/readopt/internal/cpumodel"
	"github.com/readoptdb/readopt/internal/exec"
	"github.com/readoptdb/readopt/internal/store"
)

// Snapshot pins one consistent view of the table: the generation and
// runs of a single epoch plus the memtable rows present when it was
// taken. Everything a query reads through a snapshot is immutable —
// versions are refcounted and the memtable is append-only between
// spills, so the captured slice never changes underneath the reader.
//
// Snapshot satisfies the plan layer's delta-source interface
// structurally: Table is the read-optimized base the plan scans, and
// OpenDelta supplies one operator per overlay source (runs oldest
// first, then the memtable) delivering full-width tuples.
type Snapshot struct {
	st       *Store
	v        *version
	mem      []byte
	memRows  int
	released atomic.Bool
}

// Snapshot pins the store's current version and memtable contents.
// Release it when the query finishes; files it references survive until
// then, whatever spills and compactions happen in between.
func (s *Store) Snapshot() *Snapshot {
	s.mu.Lock()
	v := s.cur
	v.retain()
	mem := s.mem[:s.memRows*s.sch.Width()]
	rows := s.memRows
	s.mu.Unlock()
	s.snapshots.Add(1)
	return &Snapshot{st: s, v: v, mem: mem, memRows: rows}
}

// Release unpins the snapshot. Idempotent.
func (sn *Snapshot) Release() {
	if !sn.released.CompareAndSwap(false, true) {
		return
	}
	sn.v.release()
	sn.st.snapshots.Add(-1)
}

// Epoch identifies the pinned version. Two result sets from the same
// epoch with the same memtable length are byte-identical.
func (sn *Snapshot) Epoch() int64 { return sn.v.epoch }

// Table returns the snapshot's read-optimized generation, the base the
// plan layer compiles its scan against.
func (sn *Snapshot) Table() *store.Table { return sn.v.gen.tbl }

// DeltaRows returns the number of rows the delta operators deliver on
// top of the base table.
func (sn *Snapshot) DeltaRows() int64 {
	return sn.v.deltaRows() + int64(sn.memRows)
}

// OpenDelta returns one unopened operator per delta source: each run of
// the pinned version oldest first, then the memtable capture. The
// caller owns Open/Close. counters may be nil.
func (sn *Snapshot) OpenDelta(ctx context.Context, counters *cpumodel.Counters) ([]exec.Operator, error) {
	ops := make([]exec.Operator, 0, len(sn.v.runs)+1)
	for _, r := range sn.v.runs {
		ops = append(ops, newRunScanner(ctx, r.dir, r.meta, r.sums, sn.st.sch, counters))
	}
	if sn.memRows > 0 {
		src, err := exec.NewSliceSource(sn.st.sch, sn.mem, 0)
		if err != nil {
			return nil, err
		}
		ops = append(ops, src)
	}
	return ops, nil
}

// KeyAttr implements the plan layer's key-range delta extension: the
// attribute runs and generations are sorted on.
func (sn *Snapshot) KeyAttr() int { return sn.st.key }

// OpenDeltaRange is OpenDelta restricted to overlay rows whose key may
// fall in [lo, hi]. Runs are key-sorted, so the manifest alone skips
// whole runs (MinKey/MaxKey) and narrows survivors to a page window
// (Sparse/SparseMax); skipped pages are charged to counters as pruned
// and their bytes as never read. The memtable is unsorted and always
// included — the plan's exact filters drop its non-qualifying rows.
// Pruning is conservative, so the rows delivered are a superset of the
// qualifying rows and a strict subset of what OpenDelta delivers;
// results after filtering are byte-identical. counters may be nil.
func (sn *Snapshot) OpenDeltaRange(ctx context.Context, counters *cpumodel.Counters, lo, hi int32) ([]exec.Operator, error) {
	ops := make([]exec.Operator, 0, len(sn.v.runs)+1)
	for _, r := range sn.v.runs {
		m := r.meta
		if lo > hi || m.MaxKey < lo || m.MinKey > hi {
			chargeRunSkip(counters, m, m.Pages)
			continue
		}
		first, last := runPageWindow(m, lo, hi)
		if first > last {
			chargeRunSkip(counters, m, m.Pages)
			continue
		}
		chargeRunSkip(counters, m, m.Pages-(last-first+1))
		sc := newRunScanner(ctx, r.dir, m, r.sums, sn.st.sch, counters)
		if first > 0 || last < m.Pages-1 {
			sc.window(first, last)
		}
		ops = append(ops, sc)
	}
	if sn.memRows > 0 {
		src, err := exec.NewSliceSource(sn.st.sch, sn.mem, 0)
		if err != nil {
			return nil, err
		}
		ops = append(ops, src)
	}
	return ops, nil
}

// chargeRunSkip accounts n run pages proven out of the key range.
func chargeRunSkip(c *cpumodel.Counters, m RunMeta, n int) {
	if n <= 0 {
		return
	}
	c.AddPrunedPages(int64(n))
	c.AddBytesSkipped(int64(n) * int64(m.PageSize))
}

// runPageWindow returns the inclusive page window of a sorted run that
// can hold keys in [lo, hi]. Both ends are binary searches over the
// sparse index: SparseMax (last key per page) bounds the front exactly;
// manifests written before it existed fall back to the next page's
// first key, which over-approximates by at most one page when duplicate
// keys straddle a boundary.
func runPageWindow(m RunMeta, lo, hi int32) (first, last int) {
	n := m.Pages
	if len(m.SparseMax) == n {
		first = sort.Search(n, func(p int) bool { return m.SparseMax[p] >= lo })
	} else {
		first = sort.Search(n, func(p int) bool { return p == n-1 || m.Sparse[p+1] >= lo })
	}
	last = sort.Search(n, func(p int) bool { return m.Sparse[p] > hi }) - 1
	return first, last
}
