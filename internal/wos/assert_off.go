//go:build !readoptdebug

package wos

import "github.com/readoptdb/readopt/internal/schema"

// The debug assertions are compiled out of release builds; build with
// -tags readoptdebug to verify run-sortedness invariants at run time.
func assertSorted(*schema.Schema, int, []byte) {}
