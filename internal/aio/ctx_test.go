package aio

import (
	"context"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// TestOSReaderCtxCancelStopsPrefetch proves a cancelled context wakes a
// consumer and shuts the prefetch goroutine down without Close having
// to race it.
func TestOSReaderCtxCancelStopsPrefetch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f")
	if err := os.WriteFile(path, make([]byte, 1<<20), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	ctx, cancel := context.WithCancel(context.Background())
	r, err := NewOSReaderCtx(ctx, f, 4096, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err != nil {
		t.Fatalf("first Next: %v", err)
	}
	cancel()
	// The prefetcher may already have units buffered; drain until the
	// cancellation error surfaces. It must arrive within the prefetch
	// depth, never EOF and never a hang.
	var got error
	for i := 0; i < 16; i++ {
		_, err := r.Next()
		if err != nil {
			got = err
			break
		}
	}
	if got != context.Canceled {
		t.Fatalf("Next after cancel = %v, want context.Canceled", got)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestOSReaderCtxPreCancelled proves a reader opened with an already
// dead context reports the cancellation instead of reading.
func TestOSReaderCtxPreCancelled(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f")
	if err := os.WriteFile(path, make([]byte, 8192), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r, err := NewOSReaderCtx(ctx, f, 4096, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for i := 0; ; i++ {
		_, err := r.Next()
		if err == context.Canceled {
			return
		}
		if err == io.EOF || err != nil {
			t.Fatalf("Next = %v, want context.Canceled", err)
		}
		if i > 4 {
			t.Fatal("cancelled reader kept delivering units")
		}
	}
}
