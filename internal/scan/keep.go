package scan

import (
	"sort"

	"github.com/readoptdb/readopt/internal/cpumodel"
)

// This file holds the row-range ("keep set") machinery of selective
// scans. The plan layer intersects SARGable predicates with the store's
// per-page zone maps and hands every scanner the surviving global row
// ranges; the scanners use them to skip decoding pages that cannot
// contain a qualifying row. Ranges are expressed in global row space —
// not page space — because the column layout gives every column file
// its own page capacity: one keep set prunes all of them.

// RowRange is a half-open interval [Lo, Hi) of global row indexes.
type RowRange struct {
	Lo int64
	Hi int64
}

// PageSection is the contiguous page window of one file a selective
// scan actually reads: Start is the global page index of the first page
// delivered by the reader, Pages the number of delivered pages. Pages
// outside the section are never requested from the I/O layer.
type PageSection struct {
	Start int64
	Pages int64
}

// KeepIntersects reports whether any keep range overlaps [lo, hi). The
// keep set must be sorted and disjoint (the plan layer guarantees it).
func KeepIntersects(keep []RowRange, lo, hi int64) bool {
	i := sort.Search(len(keep), func(i int) bool { return keep[i].Hi > lo })
	return i < len(keep) && keep[i].Lo < hi
}

// ClipKeep intersects a keep set with [start, end), returning a new
// sorted, disjoint set. A nil input stays nil (no pruning); a non-nil
// input may clip to an empty, non-nil set (nothing survives).
func ClipKeep(keep []RowRange, start, end int64) []RowRange {
	if keep == nil {
		return nil
	}
	out := make([]RowRange, 0, len(keep))
	for _, r := range keep {
		lo, hi := r.Lo, r.Hi
		if lo < start {
			lo = start
		}
		if end > 0 && hi > end {
			hi = end
		}
		if lo < hi {
			out = append(out, RowRange{Lo: lo, Hi: hi})
		}
	}
	return out
}

// KeepRows returns the total number of rows in the keep set.
func KeepRows(keep []RowRange) int64 {
	var n int64
	for _, r := range keep {
		n += r.Hi - r.Lo
	}
	return n
}

// settleUnreadPages classifies the delivered-section pages a scanner
// never pulled from its reader (the consumer stopped early): pruned if
// the keep set excludes them, late-skipped otherwise. Keeps the page
// conservation identity — touched + pruned + late-skipped covers the
// section — even on early exit.
func settleUnreadPages(counters *cpumodel.Counters, keep []RowRange, startPage, pagesRead, secPages int64, capacity int) {
	for p := startPage + pagesRead; p < startPage+secPages; p++ {
		lo := p * int64(capacity)
		if KeepIntersects(keep, lo, lo+int64(capacity)) {
			counters.AddLateSkippedPages(1)
		} else {
			counters.AddPrunedPages(1)
		}
	}
}

// filterSelKeep compacts a page's selection vector in place, retaining
// only entries whose global row (base + sel[i]) falls inside the keep
// set, and returns the new length. Both the selection vector and the
// keep set are ascending, so one merge walk suffices.
//
//readopt:selconsumer
func filterSelKeep(sel []int32, keep []RowRange, base int64) int {
	k, ri := 0, 0
	for _, s := range sel {
		pos := base + int64(s)
		for ri < len(keep) && keep[ri].Hi <= pos {
			ri++
		}
		if ri == len(keep) {
			break
		}
		if pos >= keep[ri].Lo {
			sel[k] = s
			k++
		}
	}
	return k
}
