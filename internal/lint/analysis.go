// Package lint is readopt's static invariant suite: a set of custom
// analyzers run over the module by cmd/readoptlint. The engine lives or
// dies on invariants the Go compiler cannot see — fixed-width codes must
// fit their declared bit widths, dense-packed pages must never be
// addressed past their trailer, and the block-iterator hot loop must not
// allocate — so this package machine-checks them on every build instead
// of rediscovering them in benchmarks.
//
// The framework mirrors the golang.org/x/tools/go/analysis API shape
// (Analyzer, Pass, Diagnostic) but is built on the standard library
// only: packages are enumerated with `go list` and type-checked from
// source with go/types, so the linter needs no dependencies beyond the
// Go toolchain itself.
//
// The static layer pairs with the `readoptdebug` build tag, which
// compiles in runtime assertions (page bounds, code width, block
// length) that the analyzers reference in their diagnostics: the
// analyzer proves the invariant where it can and points at the
// assertion that guards it everywhere else.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one named invariant check. The shape deliberately matches
// golang.org/x/tools/go/analysis.Analyzer so the checks could be ported
// to a multichecker unchanged if the dependency ever becomes available.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics ("hotalloc").
	Name string
	// Doc is the one-paragraph description `readoptlint -help` prints.
	Doc string
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass) error
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// PkgPath is the package's import path; PkgName its package name.
	// Analyzers scope themselves by name ("page", "bitio") so the same
	// check applies to the real package and to its test fixtures.
	PkgPath string
	PkgName string

	ignores ignoreIndex
	report  func(Diagnostic)
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Reportf records a finding at pos unless a `//readopt:ignore <name>`
// directive covers that line or its enclosing declaration.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.ignores.covers(p.Analyzer.Name, position) {
		return
	}
	p.report(Diagnostic{Pos: position, Analyzer: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// Analyzers returns the full suite in its canonical order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		HotAlloc,
		BitWidth,
		PageBounds,
		ClockDiscipline,
		TracePool,
		FaultCmp,
		RunCRC,
		EpochPin,
		CloseLeak,
		CtxLoop,
		PoolPair,
		SelBounds,
		RetryCtx,
	}
}

// RunAnalyzers applies every analyzer to every package and returns the
// findings sorted by position then analyzer name.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		idx := buildIgnoreIndex(pkg.Fset, pkg.Files)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				PkgPath:   pkg.PkgPath,
				PkgName:   pkg.Name,
				ignores:   idx,
				report:    func(d Diagnostic) { diags = append(diags, d) },
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.PkgPath, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}
