package exec

import (
	"bytes"
	"fmt"

	"github.com/readoptdb/readopt/internal/schema"
)

// CmpOp is a comparison operator of a SARGable predicate.
type CmpOp uint8

const (
	Lt CmpOp = iota
	Le
	Eq
	Ne
	Ge
	Gt
)

// String returns the SQL spelling of the operator.
func (op CmpOp) String() string {
	switch op {
	case Lt:
		return "<"
	case Le:
		return "<="
	case Eq:
		return "="
	case Ne:
		return "<>"
	case Ge:
		return ">="
	case Gt:
		return ">"
	default:
		return fmt.Sprintf("CmpOp(%d)", uint8(op))
	}
}

func cmpHolds(op CmpOp, c int) bool {
	switch op {
	case Lt:
		return c < 0
	case Le:
		return c <= 0
	case Eq:
		return c == 0
	case Ne:
		return c != 0
	case Ge:
		return c >= 0
	default:
		return c > 0
	}
}

// Predicate is a SARGable comparison of one attribute against a constant
// — the only predicate form the scanners need to evaluate directly on
// stored data.
type Predicate struct {
	// Attr indexes the attribute in the scanned table's schema.
	Attr int
	Op   CmpOp
	// Int is the constant for integer attributes; Text (exactly the
	// attribute's width, space-padded) for text attributes.
	Int  int32
	Text []byte
}

// IntPred returns an integer-attribute predicate.
func IntPred(attr int, op CmpOp, v int32) Predicate {
	return Predicate{Attr: attr, Op: op, Int: v}
}

// TextPred returns a text-attribute predicate; v is padded to the
// attribute width at Validate time.
func TextPred(attr int, op CmpOp, v string) Predicate {
	return Predicate{Attr: attr, Op: op, Text: []byte(v)}
}

// Validate checks the predicate against a schema and normalizes the text
// constant to the attribute width.
func (p *Predicate) Validate(s *schema.Schema) error {
	if p.Attr < 0 || p.Attr >= s.NumAttrs() {
		return fmt.Errorf("exec: predicate attribute %d out of range for %s", p.Attr, s.Name)
	}
	a := s.Attrs[p.Attr]
	switch a.Type.Kind {
	case schema.Int32:
		if p.Text != nil {
			return fmt.Errorf("exec: text constant for integer attribute %s", a.Name)
		}
	case schema.Text:
		if len(p.Text) > a.Type.Size {
			return fmt.Errorf("exec: constant %q longer than attribute %s (%d bytes)", p.Text, a.Name, a.Type.Size)
		}
		padded := make([]byte, a.Type.Size)
		copy(padded, p.Text)
		for i := len(p.Text); i < a.Type.Size; i++ {
			padded[i] = ' '
		}
		p.Text = padded
	}
	return nil
}

// EvalInt evaluates the predicate against an integer value.
func (p *Predicate) EvalInt(v int32) bool {
	switch {
	case v < p.Int:
		return cmpHolds(p.Op, -1)
	case v > p.Int:
		return cmpHolds(p.Op, 1)
	default:
		return cmpHolds(p.Op, 0)
	}
}

// EvalText evaluates the predicate against a raw text value of the
// attribute's width.
func (p *Predicate) EvalText(v []byte) bool {
	return cmpHolds(p.Op, bytes.Compare(v, p.Text))
}

// Eval evaluates the predicate against a decoded tuple of schema s.
func (p *Predicate) Eval(s *schema.Schema, tuple []byte) bool {
	a := s.Attrs[p.Attr]
	if a.Type.Kind == schema.Int32 {
		return p.EvalInt(s.Int32At(tuple, p.Attr))
	}
	return p.EvalText(s.TextAt(tuple, p.Attr))
}

// String renders the predicate for plan display, e.g. "a3 < 1000".
func (p Predicate) String() string {
	if p.Text != nil {
		return fmt.Sprintf("a%d %s %q", p.Attr, p.Op, p.Text)
	}
	return fmt.Sprintf("a%d %s %d", p.Attr, p.Op, p.Int)
}
