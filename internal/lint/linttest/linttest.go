// Package linttest runs the invariant suite's analyzers over fixture
// packages and compares their findings to expectations written in the
// fixture source, in the style of golang.org/x/tools' analysistest
// (built, like the suite itself, on the standard library only).
//
// An expectation is a comment on the offending line:
//
//	x := time.Now() // want "time.Now"
//
// Each quoted string is a substring that must appear in the rendered
// diagnostic ("analyzer: message") reported on that line; several
// strings expect several diagnostics. Every diagnostic must be
// expected and every expectation must fire, so a clean fixture is
// simply one with no want comments and no findings.
package linttest

import (
	"fmt"
	"regexp"
	"strings"
	"testing"

	"github.com/readoptdb/readopt/internal/lint"
)

// wantRE matches one quoted expectation inside a // want comment.
var (
	wantCommentRE = regexp.MustCompile(`//\s*want\s+(.*)$`)
	wantStringRE  = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)
)

// expectation is one // want entry: a substring expected in a
// diagnostic on a specific file line.
type expectation struct {
	file    string
	line    int
	substr  string
	matched bool
}

// Run loads the fixture package rooted at dir (a directory inside the
// module, typically under testdata/) and applies the analyzers,
// failing the test on any mismatch between findings and expectations.
// It returns the diagnostics for callers that want further checks.
func Run(t *testing.T, dir string, analyzers ...*lint.Analyzer) []lint.Diagnostic {
	t.Helper()
	pkgs, err := lint.NewLoader(dir).Load(".")
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	diags, err := lint.RunAnalyzers(pkgs, analyzers)
	if err != nil {
		t.Fatalf("running analyzers on %s: %v", dir, err)
	}
	wants := collectWants(pkgs)
	for _, d := range diags {
		rendered := fmt.Sprintf("%s: %s", d.Analyzer, d.Message)
		if !claim(wants, d.Pos.Filename, d.Pos.Line, rendered) {
			t.Errorf("unexpected diagnostic %s:%d: %s", d.Pos.Filename, d.Pos.Line, rendered)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected a diagnostic containing %q, got none", w.file, w.line, w.substr)
		}
	}
	return diags
}

// claim marks the first unmatched expectation satisfied by the
// diagnostic and reports whether one existed.
func claim(wants []*expectation, file string, line int, rendered string) bool {
	for _, w := range wants {
		if !w.matched && w.file == file && w.line == line && w.substr != "" && strings.Contains(rendered, w.substr) {
			w.matched = true
			return true
		}
	}
	return false
}

// collectWants gathers every // want expectation in the fixture's
// parsed files.
func collectWants(pkgs []*lint.Package) []*expectation {
	var wants []*expectation
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, group := range f.Comments {
				for _, c := range group.List {
					m := wantCommentRE.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					for _, q := range wantStringRE.FindAllStringSubmatch(m[1], -1) {
						wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, substr: q[1]})
					}
				}
			}
		}
	}
	return wants
}
