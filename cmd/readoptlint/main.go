// Command readoptlint runs the engine's static invariant suite
// (internal/lint) as a single multichecker over the module:
//
//	go run ./cmd/readoptlint ./...
//
// The suite enforces what the Go compiler cannot see: hot block-iterator
// paths stay allocation-free (hotalloc), shift widths in the packing
// kernels stay provably in [0,64] (bitwidth), page-offset arithmetic
// uses the named trailer constants (pagebounds), engine time flows only
// through the injected Clock (clockdiscipline), and every counter in
// the pool reaches every conversion the conservation tests sum
// (tracepool). Exit status: 0 clean, 1 findings, 2 load error.
package main

import (
	"os"

	"github.com/readoptdb/readopt/internal/lint"
)

func main() {
	dir, err := os.Getwd()
	if err != nil {
		dir = "."
	}
	os.Exit(lint.RunCommand(dir, os.Args[1:], os.Stdout, os.Stderr))
}
