package scan

import (
	"bytes"
	"path/filepath"
	"testing"

	"github.com/readoptdb/readopt/internal/cpumodel"
	"github.com/readoptdb/readopt/internal/exec"
	"github.com/readoptdb/readopt/internal/schema"
	"github.com/readoptdb/readopt/internal/store"
)

func loadPAX(t *testing.T, sch *schema.Schema) *store.Table {
	t.Helper()
	tbl, err := store.LoadSynthetic(filepath.Join(t.TempDir(), "pax"), sch, store.PAX, 4096, testSeed, testN)
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func newPAX(t *testing.T, tbl *store.Table, preds []exec.Predicate, proj []int, counters *cpumodel.Counters) *PAXScanner {
	t.Helper()
	s, err := NewPAXScanner(RowConfig{
		Schema:   tbl.Schema,
		PageSize: tbl.PageSize,
		Reader:   openOS(t, tbl.PAXPath()),
		Dicts:    tbl.Dicts,
		Preds:    preds,
		Proj:     proj,
		Counters: counters,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestPAXScannerAgreesWithReference runs the same differential scenarios
// as the row/column scanners over the PAX layout.
func TestPAXScannerAgreesWithReference(t *testing.T) {
	for _, sc := range scenarios() {
		t.Run(sc.name, func(t *testing.T) {
			tbl := loadPAX(t, sc.sch)
			preds := sc.preds(sc.sch)
			want := reference(t, sc.sch, preds, sc.proj)
			got, err := exec.Collect(newPAX(t, tbl, preds, sc.proj, nil))
			if err != nil {
				t.Fatalf("PAX scan: %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("PAX scan output differs from reference (%d vs %d bytes)", len(got), len(want))
			}
		})
	}
}

// TestPAXTradeoff pins the PAX property the related work describes: disk
// I/O identical to the row store, memory traffic close to the column
// store when few attributes are selected.
func TestPAXTradeoff(t *testing.T) {
	sch := schema.Lineitem()
	rowTbl, err := store.LoadSynthetic(filepath.Join(t.TempDir(), "row"), sch, store.Row, 4096, testSeed, testN)
	if err != nil {
		t.Fatal(err)
	}
	paxTbl := loadPAX(t, sch)
	preds := selPred(sch, 0.10)
	proj := []int{schema.LPartKey, schema.LQuantity}

	var rowC, paxC cpumodel.Counters
	if _, err := exec.Drain(newRow(t, rowTbl, preds, proj, &rowC)); err != nil {
		t.Fatal(err)
	}
	if _, err := exec.Drain(newPAX(t, paxTbl, preds, proj, &paxC)); err != nil {
		t.Fatal(err)
	}
	// Same number of pages, same I/O (within one I/O unit).
	if diff := rowC.IOBytes - paxC.IOBytes; diff > 1<<20 || diff < -1<<20 {
		t.Errorf("PAX I/O (%d) should match row I/O (%d)", paxC.IOBytes, rowC.IOBytes)
	}
	// Far less memory traffic: two 4-byte minipages versus 152-byte rows.
	if paxC.SeqBytes*4 > rowC.SeqBytes {
		t.Errorf("PAX memory traffic (%d) should be far below row (%d)", paxC.SeqBytes, rowC.SeqBytes)
	}
}

func TestPAXScannerValidation(t *testing.T) {
	tbl := loadPAX(t, schema.Orders())
	if _, err := NewPAXScanner(RowConfig{Schema: tbl.Schema, Proj: []int{0}}); err == nil {
		t.Error("nil reader accepted")
	}
	if _, err := NewPAXScanner(RowConfig{Schema: tbl.Schema, Reader: openOS(t, tbl.PAXPath())}); err == nil {
		t.Error("empty projection accepted")
	}
}
