// Package wos is the engine's write-optimized store — the left half of
// the paper's Figure 1 architecture, grown from a sketch into a real
// ingest path. Inserts land in a bounded in-memory memtable; when it
// fills, the memtable is sorted by key and spilled as an immutable run
// file; a background compactor merges the accumulated runs with the
// current read-optimized generation into a fresh generation, restoring
// the dense-packed sorted format every query scans.
//
// Readers never block on writers and never see a half-applied epoch. A
// Snapshot pins one version — generation + runs + a frozen view of the
// memtable — for its whole query; versions are refcounted, and the files
// of a superseded version are deleted only after the last snapshot over
// them is released. The memtable is append-only between spills, so a
// snapshot's view is a zero-copy slice capture.
package wos

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"github.com/readoptdb/readopt/internal/page"
	"github.com/readoptdb/readopt/internal/schema"
	"github.com/readoptdb/readopt/internal/store"
)

// Options tune a write-optimized store. Zero values take the defaults;
// Key is required at Create and recorded in the manifest thereafter.
type Options struct {
	// Key names the int32 column runs and generations are sorted on.
	Key string
	// MemtableBytes bounds the in-memory buffer; reaching it triggers a
	// spill. Default 4MB.
	MemtableBytes int
	// RunPageSize is the page size of spilled run files. Default 64KB.
	RunPageSize int
	// CompactAfterRuns is the run count that wakes the compactor.
	// Default 4.
	CompactAfterRuns int
	// PageSize is the page size of merged generations. Default
	// page.DefaultSize.
	PageSize int
	// DisableCompactor turns off the background goroutine; compactions
	// then happen only through explicit Compact calls. Tests use this to
	// drive the lifecycle deterministically.
	DisableCompactor bool
}

func (o *Options) defaults() {
	if o.MemtableBytes <= 0 {
		o.MemtableBytes = 4 << 20
	}
	if o.RunPageSize <= 0 {
		o.RunPageSize = 64 << 10
	}
	if o.CompactAfterRuns <= 0 {
		o.CompactAfterRuns = 4
	}
	if o.PageSize <= 0 {
		o.PageSize = page.DefaultSize
	}
}

// genRef is a refcounted handle on one read-optimized generation
// directory. The directory is removed when the last version referencing
// it releases, if a newer generation has superseded it.
type genRef struct {
	dir  string
	tbl  *store.Table
	refs atomic.Int64
	drop atomic.Bool
}

func (g *genRef) retain() { g.refs.Add(1) }

func (g *genRef) release() {
	if g.refs.Add(-1) == 0 && g.drop.Load() {
		os.RemoveAll(g.dir)
	}
}

// runRef is the same for one run file and its CRC sidecar.
type runRef struct {
	dir  string
	meta RunMeta
	sums []uint32
	refs atomic.Int64
	drop atomic.Bool
}

func (r *runRef) retain() { r.refs.Add(1) }

func (r *runRef) release() {
	if r.refs.Add(-1) == 0 && r.drop.Load() {
		os.Remove(filepath.Join(r.dir, r.meta.File))
		os.Remove(filepath.Join(r.dir, store.SidecarName(r.meta.File)))
	}
}

// version is one immutable epoch of the table: a generation plus the
// runs layered on it, oldest first. The store's current version holds
// one reference; each open snapshot holds another. Releasing the last
// reference releases the underlying resources and deletes the epoch's
// manifest if it has been superseded.
type version struct {
	epoch    int64
	dir      string
	gen      *genRef
	runs     []*runRef
	refs     atomic.Int64
	obsolete atomic.Bool
}

func newVersion(dir string, epoch int64, gen *genRef, runs []*runRef) *version {
	v := &version{epoch: epoch, dir: dir, gen: gen, runs: runs}
	v.refs.Store(1)
	gen.retain()
	for _, r := range runs {
		r.retain()
	}
	return v
}

func (v *version) retain() { v.refs.Add(1) }

func (v *version) release() {
	if v.refs.Add(-1) != 0 {
		return
	}
	v.gen.release()
	for _, r := range v.runs {
		r.release()
	}
	if v.obsolete.Load() {
		name := manifestName(v.epoch)
		os.Remove(filepath.Join(v.dir, name))
		os.Remove(filepath.Join(v.dir, store.SidecarName(name)))
	}
}

// deltaRows is the tuple count of a version's runs.
func (v *version) deltaRows() int64 {
	var n int64
	for _, r := range v.runs {
		n += r.meta.Tuples
	}
	return n
}

// Store is a write-optimized table: a memtable over refcounted immutable
// versions. All mutation happens under mu; queries pin a Snapshot and
// run lock-free against immutable state.
type Store struct {
	dir    string
	sch    *schema.Schema
	layout store.Layout
	opts   Options
	key    int // index of the sort-key attribute

	mu      sync.Mutex
	mem     []byte // append-only between spills; snapshots slice it
	memRows int
	cur     *version
	seq     int64 // next file sequence number
	closed  bool

	// Lifetime counters. Those read or written outside mu are atomic.
	insertedRows  int64
	spills        int64
	spilledBytes  int64
	compactions   atomic.Int64
	compactedRuns atomic.Int64
	compactFails  atomic.Int64
	snapshots     atomic.Int64

	compactMu sync.Mutex // serializes compactions, not queries
	compactCh chan struct{}
	done      chan struct{}
	wg        sync.WaitGroup
}

// Create initialises a new write-optimized table at dir: an empty
// generation, a manifest, and a CURRENT pointer. opts.Key must name an
// int32 column of sch.
func Create(dir string, sch *schema.Schema, layout store.Layout, opts Options) (*Store, error) {
	opts.defaults()
	key, err := resolveKey(sch, opts.Key)
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wos: creating %s: %w", dir, err)
	}
	if IsIngestDir(dir) {
		return nil, fmt.Errorf("wos: ingest table already exists in %s", dir)
	}
	gname := genName(0)
	w, err := store.Create(filepath.Join(dir, gname), sch, layout, opts.PageSize)
	if err != nil {
		return nil, err
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	tbl, err := store.Open(filepath.Join(dir, gname))
	if err != nil {
		return nil, err
	}
	m := &manifest{Format: manifestFormat, Epoch: 1, Key: opts.Key, Seq: 1, Generation: gname}
	if err := writeManifest(dir, m); err != nil {
		return nil, err
	}
	s := &Store{
		dir:    dir,
		sch:    sch,
		layout: layout,
		opts:   opts,
		key:    key,
		seq:    1,
	}
	s.cur = newVersion(dir, 1, &genRef{dir: filepath.Join(dir, gname), tbl: tbl}, nil)
	s.start()
	return s, nil
}

// Open loads an existing write-optimized table. Schema, layout and key
// come from the manifest and generation; opts supply runtime knobs
// only (Key, if set, must agree with the manifest). Orphan files from a
// crashed spill or compaction are removed.
func Open(dir string, opts Options) (*Store, error) {
	opts.defaults()
	m, err := readManifest(dir)
	if err != nil {
		return nil, err
	}
	if opts.Key != "" && opts.Key != m.Key {
		return nil, fmt.Errorf("wos: key %q does not match manifest key %q", opts.Key, m.Key)
	}
	opts.Key = m.Key
	if err := gcOrphans(dir, m); err != nil {
		return nil, err
	}
	tbl, err := store.Open(filepath.Join(dir, m.Generation))
	if err != nil {
		return nil, err
	}
	key, err := resolveKey(tbl.Schema, m.Key)
	if err != nil {
		return nil, err
	}
	tag := schemaTag(tbl.Schema)
	runs := make([]*runRef, 0, len(m.Runs))
	for _, rm := range m.Runs {
		if rm.SchemaTag != tag {
			return nil, corruptf("wos: run %s schema tag %08x does not match generation %08x", rm.File, rm.SchemaTag, tag)
		}
		sums, err := loadRunSums(dir, rm)
		if err != nil {
			return nil, err
		}
		runs = append(runs, &runRef{dir: dir, meta: rm, sums: sums})
	}
	s := &Store{
		dir:    dir,
		sch:    tbl.Schema,
		layout: tbl.Layout,
		opts:   opts,
		key:    key,
		seq:    m.Seq,
	}
	s.cur = newVersion(dir, m.Epoch, &genRef{dir: filepath.Join(dir, m.Generation), tbl: tbl}, runs)
	s.start()
	return s, nil
}

func (s *Store) start() {
	s.compactCh = make(chan struct{}, 1)
	s.done = make(chan struct{})
	if !s.opts.DisableCompactor {
		s.wg.Add(1)
		go s.compactor()
	}
}

// resolveKey finds the named int32 attribute in sch.
func resolveKey(sch *schema.Schema, name string) (int, error) {
	if name == "" {
		return 0, fmt.Errorf("wos: a sort-key column is required")
	}
	for i, a := range sch.Attrs {
		if a.Name == name {
			if a.Type.Kind != schema.Int32 {
				return 0, fmt.Errorf("wos: key column %s is %s, want int32", name, a.Type.Kind)
			}
			return i, nil
		}
	}
	return 0, fmt.Errorf("wos: schema %s has no column %s", sch.Name, name)
}

// Schema returns the table's schema.
func (s *Store) Schema() *schema.Schema { return s.sch }

// Dir returns the table directory.
func (s *Store) Dir() string { return s.dir }

// Key returns the index of the sort-key attribute.
func (s *Store) Key() int { return s.key }

// Gen returns the current read-optimized generation. Unlike a Snapshot
// it pins nothing: use it for informational reads of in-memory metadata
// (schema, layout, file sizes), not for scanning files.
func (s *Store) Gen() *store.Table {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cur.gen.tbl
}

// Insert adds one decoded tuple (Schema.Width bytes), copying it into
// the memtable. Reaching the memtable bound spills synchronously: the
// caller of the overflowing insert pays for the spill, which is the
// admission control that stops an insert storm from outrunning the
// disk.
func (s *Store) Insert(tuple []byte) error {
	if len(tuple) != s.sch.Width() {
		return fmt.Errorf("wos: insert of %d bytes, schema %s wants %d", len(tuple), s.sch.Name, s.sch.Width())
	}
	return s.insert(tuple, 1)
}

// InsertBatch adds n tuples (concatenated, n*Schema.Width bytes)
// atomically: no snapshot observes a prefix of the batch.
func (s *Store) InsertBatch(tuples []byte, n int) error {
	if n <= 0 || len(tuples) != n*s.sch.Width() {
		return fmt.Errorf("wos: batch of %d bytes does not hold %d tuples of schema %s", len(tuples), n, s.sch.Name)
	}
	return s.insert(tuples, n)
}

func (s *Store) insert(tuples []byte, n int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("wos: insert into closed store %s", s.sch.Name)
	}
	s.mem = append(s.mem, tuples...)
	s.memRows += n
	s.insertedRows += int64(n)
	if len(s.mem) >= s.opts.MemtableBytes {
		return s.spillLocked()
	}
	return nil
}

// spillLocked sorts the memtable and persists it as a new run under a
// new epoch, then resets the memtable to a fresh buffer — never the old
// array, which live snapshots may still be reading. Caller holds mu.
func (s *Store) spillLocked() error {
	if s.memRows == 0 {
		return nil
	}
	sorted := SortTuples(s.sch, s.key, s.mem)
	name := runName(s.seq)
	meta, sums, err := writeRun(s.dir, name, s.sch, s.key, sorted, s.opts.RunPageSize)
	if err != nil {
		return fmt.Errorf("wos: spilling memtable: %w", err)
	}
	run := &runRef{dir: s.dir, meta: meta, sums: sums}
	runs := append(append([]*runRef(nil), s.cur.runs...), run)
	nv := newVersion(s.dir, s.cur.epoch+1, s.cur.gen, runs)
	if err := s.writeManifestLocked(nv); err != nil {
		nv.obsolete.Store(true)
		run.drop.Store(true)
		nv.release()
		return err
	}
	s.installLocked(nv)
	s.mem = make([]byte, 0, s.opts.MemtableBytes+s.sch.Width())
	s.memRows = 0
	s.seq++
	s.spills++
	s.spilledBytes += int64(len(sorted))
	if len(runs) >= s.opts.CompactAfterRuns {
		s.kickCompactor()
	}
	return nil
}

// writeManifestLocked persists nv's manifest and swaps CURRENT.
func (s *Store) writeManifestLocked(nv *version) error {
	m := &manifest{
		Format:     manifestFormat,
		Epoch:      nv.epoch,
		Key:        s.opts.Key,
		Seq:        s.seq + 1,
		Generation: filepath.Base(nv.gen.dir),
	}
	for _, r := range nv.runs {
		m.Runs = append(m.Runs, r.meta)
	}
	return writeManifest(s.dir, m)
}

// installLocked swaps the current version to nv, marking resources nv no
// longer carries for deletion once their last reader drains.
func (s *Store) installLocked(nv *version) {
	old := s.cur
	if old.gen != nv.gen {
		old.gen.drop.Store(true)
	}
	carried := make(map[*runRef]bool, len(nv.runs))
	for _, r := range nv.runs {
		carried[r] = true
	}
	for _, r := range old.runs {
		if !carried[r] {
			r.drop.Store(true)
		}
	}
	old.obsolete.Store(true)
	s.cur = nv
	old.release()
}

// kickCompactor nudges the background compactor without blocking.
func (s *Store) kickCompactor() {
	if s.opts.DisableCompactor {
		return
	}
	select {
	case s.compactCh <- struct{}{}:
	default:
	}
}

// Flush spills the memtable to a run regardless of size. A no-op when
// the memtable is empty.
func (s *Store) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("wos: flush of closed store %s", s.sch.Name)
	}
	return s.spillLocked()
}

// Rows returns the store's total row count across generation, runs and
// memtable.
func (s *Store) Rows() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cur.gen.tbl.Tuples + s.cur.deltaRows() + int64(s.memRows)
}

// Close flushes the memtable, stops the compactor and marks the store
// closed. Snapshots taken before Close remain valid.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	err := s.spillLocked()
	s.closed = true
	s.mu.Unlock()
	close(s.done)
	s.wg.Wait()
	return err
}

// Metrics is a point-in-time snapshot of the store's ingest counters,
// exported through /metrics and the stats endpoints.
type Metrics struct {
	Epoch         int64
	GenTuples     int64
	LiveRuns      int64
	RunTuples     int64
	MemtableRows  int64
	MemtableBytes int64
	InsertedRows  int64
	Spills        int64
	SpilledBytes  int64
	Compactions   int64
	CompactedRuns int64
	CompactFails  int64
	SnapshotsOpen int64
}

// Metrics reports the store's current counters.
func (s *Store) Metrics() Metrics {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Metrics{
		Epoch:         s.cur.epoch,
		GenTuples:     s.cur.gen.tbl.Tuples,
		LiveRuns:      int64(len(s.cur.runs)),
		RunTuples:     s.cur.deltaRows(),
		MemtableRows:  int64(s.memRows),
		MemtableBytes: int64(len(s.mem)),
		InsertedRows:  s.insertedRows,
		Spills:        s.spills,
		SpilledBytes:  s.spilledBytes,
		Compactions:   s.compactions.Load(),
		CompactedRuns: s.compactedRuns.Load(),
		CompactFails:  s.compactFails.Load(),
		SnapshotsOpen: s.snapshots.Load(),
	}
}
