package wos

import (
	"context"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"

	"github.com/readoptdb/readopt/internal/aio"
	"github.com/readoptdb/readopt/internal/clock"
	"github.com/readoptdb/readopt/internal/cpumodel"
	"github.com/readoptdb/readopt/internal/exec"
	"github.com/readoptdb/readopt/internal/fault"
	"github.com/readoptdb/readopt/internal/schema"
	"github.com/readoptdb/readopt/internal/store"
)

// A run file is the simplest page format in the engine: fixed-size pages,
// a 16-byte header (magic, page ID, tuple count, schema tag), then raw
// decoded tuples, zero-padded to the page boundary. Runs are written
// once, scanned a handful of times, and destroyed by the next
// compaction, so they trade the read store's dense encodings for a
// format a spill can produce in one memcpy pass. Integrity reuses the
// read store's machinery: a per-page CRC-32 sidecar in the same format
// store.VerifyPages checks.
const (
	runMagic      = 0x314e5252 // "RRN1" little-endian
	runHeaderSize = 16
)

// runCapacity is the number of tuples a run page holds.
func runCapacity(pageSize, width int) int { return (pageSize - runHeaderSize) / width }

// schemaTag fingerprints the schema a run was written under, so a scan
// over a stale or foreign run file fails loudly instead of decoding
// garbage.
func schemaTag(sch *schema.Schema) uint32 {
	return crc32.ChecksumIEEE([]byte(sch.String()))
}

// SortTuples stable-sorts concatenated decoded tuples by the int32 key
// attribute, returning a new buffer. Stability preserves insert order
// among equal keys, which keeps scan results deterministic. The facade's
// deprecated WriteBuffer shim shares it.
func SortTuples(sch *schema.Schema, key int, tuples []byte) []byte {
	width := sch.Width()
	n := len(tuples) / width
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return sch.Int32At(tuples[idx[a]*width:], key) < sch.Int32At(tuples[idx[b]*width:], key)
	})
	out := make([]byte, len(tuples))
	for pos, i := range idx {
		copy(out[pos*width:], tuples[i*width:(i+1)*width])
	}
	return out
}

// writeRun persists already-sorted tuples as the named run file plus its
// CRC sidecar and returns the manifest record and per-page checksums.
func writeRun(dir, name string, sch *schema.Schema, key int, tuples []byte, pageSize int) (RunMeta, []uint32, error) {
	assertSorted(sch, key, tuples)
	width := sch.Width()
	n := len(tuples) / width
	capacity := runCapacity(pageSize, width)
	pages := (n + capacity - 1) / capacity
	tag := schemaTag(sch)

	data := make([]byte, pages*pageSize)
	sparse := make([]int32, pages)
	sparseMax := make([]int32, pages)
	for p := 0; p < pages; p++ {
		lo, hi := p*capacity, (p+1)*capacity
		if hi > n {
			hi = n
		}
		pg := data[p*pageSize : (p+1)*pageSize]
		binary.LittleEndian.PutUint32(pg[0:], runMagic)
		binary.LittleEndian.PutUint32(pg[4:], uint32(p))
		binary.LittleEndian.PutUint32(pg[8:], uint32(hi-lo))
		binary.LittleEndian.PutUint32(pg[12:], tag)
		copy(pg[runHeaderSize:], tuples[lo*width:hi*width])
		sparse[p] = sch.Int32At(tuples[lo*width:], key)
		sparseMax[p] = sch.Int32At(tuples[(hi-1)*width:], key)
	}
	sums, err := writePagedFileWithCRC(dir, name, data, pageSize)
	if err != nil {
		return RunMeta{}, nil, err
	}
	return RunMeta{
		File:      name,
		Tuples:    int64(n),
		Pages:     pages,
		PageSize:  pageSize,
		MinKey:    sch.Int32At(tuples, key),
		MaxKey:    sch.Int32At(tuples[(n-1)*width:], key),
		SchemaTag: tag,
		Sparse:    sparse,
		SparseMax: sparseMax,
	}, sums, nil
}

// loadRunSums reads and sanity-checks a run's CRC sidecar at Open time.
func loadRunSums(dir string, meta RunMeta) ([]uint32, error) {
	fi, err := os.Stat(filepath.Join(dir, meta.File))
	if err != nil {
		return nil, err
	}
	if fi.Size() != int64(meta.Pages)*int64(meta.PageSize) {
		return nil, corruptf("wos: run %s is %d bytes, want %d", meta.File, fi.Size(), int64(meta.Pages)*int64(meta.PageSize))
	}
	sums, err := store.ReadPageSums(dir, meta.File, fi.Size(), meta.PageSize)
	if err != nil {
		return nil, corruptf("wos: run %s CRC sidecar: %v", meta.File, err)
	}
	return sums, nil
}

// runReadDepth is the prefetch window for run scans. Runs are small (a
// memtable's worth) and short-lived, so a shallow window suffices.
const runReadDepth = 8

// openRun opens pages [startPage, startPage+pages) of a run file behind
// the same reader stack the plan layer uses for table sections — OS
// prefetcher (one I/O unit per page) → chaos injector → transient-error
// retry — so run reads share the engine's fault taxonomy and injection
// points. Negative pages reads to the end of the file.
func openRun(ctx context.Context, path string, pageSize, startPage, pages int) (aio.Reader, error) {
	name := filepath.Base(path)
	base := int64(startPage) * int64(pageSize)
	open := func(skip int64) (aio.Reader, error) {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		length := int64(-1)
		if pages >= 0 {
			length = int64(pages)*int64(pageSize) - skip
		}
		r, err := aio.NewOSReaderSectionCtx(ctx, f, int64(pageSize), runReadDepth, base+skip, length)
		if err != nil {
			f.Close()
			return nil, err
		}
		return fault.ChaosWrap(name, base+skip, &runFile{OSReader: r, f: f}), nil
	}
	return fault.NewRetryReaderCtx(ctx, open, 3, fault.Backoff{Base: 2 * time.Millisecond}, clock.Real{})
}

// runFile pairs the prefetching reader with its file for Close.
type runFile struct {
	*aio.OSReader
	f *os.File
}

func (r *runFile) Close() error {
	err := r.OSReader.Close()
	if cerr := r.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// runScanner is the exec.Operator over one run file: it streams pages,
// verifies each against the sidecar, checks the header, and emits the
// raw tuples in blocks. It is the read half of the write path's delta —
// what a snapshot splices into a query plan for each live run.
type runScanner struct {
	ctx      context.Context
	dir      string
	meta     RunMeta
	sums     []uint32
	sch      *schema.Schema
	counters *cpumodel.Counters
	costs    cpumodel.Costs

	r       aio.Reader
	block   *exec.Block
	pageBuf []byte // tuples of the current page
	pagePos int    // next tuple in pageBuf
	pageN   int    // tuples in the current page
	pageIdx int    // next (absolute) page index to read
	eof     bool   // reader delivered EOF; it must not be polled again
	opened  bool

	// The scanner's page window, absolute page indexes [winStart,
	// winEnd). The default is the whole run; OpenDeltaRange narrows it
	// to the pages that can hold the pushed key range.
	winStart int
	winEnd   int
}

// newRunScanner builds a scanner over the run described by meta in dir.
// counters may be nil. The reader opens lazily in Open.
func newRunScanner(ctx context.Context, dir string, meta RunMeta, sums []uint32, sch *schema.Schema, counters *cpumodel.Counters) *runScanner {
	if ctx == nil {
		ctx = context.Background()
	}
	return &runScanner{
		ctx:      ctx,
		dir:      dir,
		meta:     meta,
		sums:     sums,
		sch:      sch,
		counters: counters,
		costs:    cpumodel.DefaultCosts(),
		block:    exec.NewBlock(sch, exec.DefaultBlockTuples),
		winEnd:   meta.Pages,
	}
}

// window restricts the scanner to the absolute page range [first, last]
// (inclusive); pages outside it are never requested from the I/O layer.
func (s *runScanner) window(first, last int) *runScanner {
	s.winStart, s.winEnd = first, last+1
	return s
}

// Schema implements exec.Operator.
func (s *runScanner) Schema() *schema.Schema { return s.sch }

// SetCounters rebinds the scanner's counters pool; the plan layer uses
// it to give each parallel overlay chain its own pool.
func (s *runScanner) SetCounters(c *cpumodel.Counters) { s.counters = c }

// Open implements exec.Operator.
func (s *runScanner) Open() error {
	pages := -1
	if s.winStart > 0 || s.winEnd < s.meta.Pages {
		pages = s.winEnd - s.winStart
	}
	r, err := openRun(s.ctx, filepath.Join(s.dir, s.meta.File), s.meta.PageSize, s.winStart, pages)
	if err != nil {
		return err
	}
	s.r = r
	s.pageIdx, s.pagePos, s.pageN = s.winStart, 0, 0
	s.eof = false
	s.opened = true
	return nil
}

// Next implements exec.Operator.
//
//readopt:hotpath
func (s *runScanner) Next() (*exec.Block, error) {
	if !s.opened {
		return nil, errRunNextBeforeOpen
	}
	width := s.sch.Width()
	s.block.Reset()
	for {
		// A cancelled query must stop between pages even when every page
		// decodes cleanly — the prefetcher only observes ctx on I/O waits.
		if err := s.ctx.Err(); err != nil {
			return nil, fault.Cancelled(err)
		}
		if s.pagePos >= s.pageN {
			// The EOF latch matters: the prefetching reader delivers io.EOF
			// exactly once, and a further Next on it blocks forever.
			if s.eof {
				if s.block.Len() > 0 {
					return s.block, nil
				}
				return nil, nil
			}
			done, err := s.nextPage()
			if err != nil {
				return nil, err
			}
			if done {
				s.eof = true
			}
			continue
		}
		for s.pagePos < s.pageN && !s.block.Full() {
			s.block.AppendTuple(s.pageBuf[s.pagePos*width : (s.pagePos+1)*width])
			s.pagePos++
		}
		if s.block.Full() {
			return s.block, nil
		}
	}
}

// nextPage pulls, verifies and decodes the next run page; done reports
// a clean end of file.
func (s *runScanner) nextPage() (done bool, err error) {
	unit, err := s.r.Next()
	if err != nil {
		if errors.Is(err, io.EOF) {
			if s.pageIdx != s.winEnd {
				return false, corruptf("wos: run %s truncated at page %d of %d", s.meta.File, s.pageIdx, s.winEnd)
			}
			return true, nil
		}
		return false, err
	}
	if s.pageIdx >= s.winEnd {
		return false, corruptf("wos: run %s longer than its %d-page window", s.meta.File, s.winEnd-s.winStart)
	}
	if len(unit) != s.meta.PageSize {
		return false, corruptf("wos: run %s page %d torn: %d bytes, want %d", s.meta.File, s.pageIdx, len(unit), s.meta.PageSize)
	}
	if got := crc32.ChecksumIEEE(unit); got != s.sums[s.pageIdx] {
		return false, corruptf("wos: run %s page %d CRC %08x, sidecar records %08x", s.meta.File, s.pageIdx, got, s.sums[s.pageIdx])
	}
	if magic := binary.LittleEndian.Uint32(unit[0:]); magic != runMagic {
		return false, corruptf("wos: run %s page %d has magic %08x", s.meta.File, s.pageIdx, magic)
	}
	if id := binary.LittleEndian.Uint32(unit[4:]); id != uint32(s.pageIdx) {
		return false, corruptf("wos: run %s page %d carries ID %d", s.meta.File, s.pageIdx, id)
	}
	if tag := binary.LittleEndian.Uint32(unit[12:]); tag != s.meta.SchemaTag {
		return false, corruptf("wos: run %s page %d schema tag %08x, want %08x", s.meta.File, s.pageIdx, tag, s.meta.SchemaTag)
	}
	width := s.sch.Width()
	count := int(binary.LittleEndian.Uint32(unit[8:]))
	if count <= 0 || count > runCapacity(s.meta.PageSize, width) {
		return false, corruptf("wos: run %s page %d claims %d tuples", s.meta.File, s.pageIdx, count)
	}
	s.pageBuf = unit[runHeaderSize : runHeaderSize+count*width]
	s.pagePos, s.pageN = 0, count
	s.pageIdx++
	s.charge(count, width)
	return false, nil
}

// charge accounts one decoded page against the cost model: a sequential
// unit of I/O, one page crossed, and the tuple loop over its rows.
//
//readopt:ignore tracepool charge adds new work to the pool rather than converting it; a run scan is purely sequential, so RandLines has nothing to add.
func (s *runScanner) charge(count, width int) {
	c := s.counters
	if c == nil {
		return
	}
	c.IORequests++
	c.IOBytes += int64(s.meta.PageSize)
	c.Pages++
	c.SeqBytes += int64(count * width)
	c.L1Bytes += int64(count * width)
	c.Instr += int64(count) * s.costs.TupleLoop
}

// Close implements exec.Operator.
func (s *runScanner) Close() error {
	s.opened = false
	if s.r == nil {
		return nil
	}
	err := s.r.Close()
	s.r = nil
	return err
}

// errRunNextBeforeOpen mirrors exec's protocol sentinel for this
// package's operator.
var errRunNextBeforeOpen = errors.New("wos: Next before Open")
