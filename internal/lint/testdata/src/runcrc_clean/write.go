// Package wos is the clean runcrc fixture: every persisted byte flows
// through a sidecar-writing choke point whose sanctioned calls carry
// the ignore directive, and reads/renames are untouched.
package wos

import (
	"hash/crc32"
	"os"
	"path/filepath"
)

// writeFileWithCRC is the fixture's stand-in for the real choke point:
// sidecar first, then data, both exempted by the directive.
func writeFileWithCRC(dir, name string, data []byte) error {
	sum := crc32.ChecksumIEEE(data)
	sidecar := []byte{byte(sum), byte(sum >> 8), byte(sum >> 16), byte(sum >> 24)}
	if err := os.WriteFile(filepath.Join(dir, name+".crc"), sidecar, 0o644); err != nil { //readopt:ignore runcrc
		return err
	}
	return os.WriteFile(filepath.Join(dir, name), data, 0o644) //readopt:ignore runcrc
}

func persistRun(dir string, data []byte) error {
	return writeFileWithCRC(dir, "run-0000001.run", data)
}

func readBack(dir, name string) ([]byte, error) {
	f, err := os.Open(filepath.Join(dir, name))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	out := make([]byte, fi.Size())
	_, err = f.Read(out)
	return out, err
}

func publish(dir, name string) error {
	return os.Rename(filepath.Join(dir, name+".tmp"), filepath.Join(dir, name))
}
