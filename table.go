package readopt

import (
	"fmt"

	"github.com/readoptdb/readopt/internal/page"
	"github.com/readoptdb/readopt/internal/schema"
	"github.com/readoptdb/readopt/internal/store"
	"github.com/readoptdb/readopt/internal/tpch"
	"github.com/readoptdb/readopt/internal/wos"
)

// Layout selects the physical design of a table.
type Layout string

const (
	// RowLayout stores whole tuples together in one file.
	RowLayout Layout = "row"
	// ColumnLayout vertically partitions the table, one file per column.
	ColumnLayout Layout = "column"
	// PAXLayout stores whole tuples per page in one file like RowLayout,
	// but organizes each page column-major (per-attribute minipages):
	// row-store I/O with column-store cache behaviour.
	PAXLayout Layout = "pax"
)

func (l Layout) internal() (store.Layout, error) {
	switch l {
	case RowLayout:
		return store.Row, nil
	case ColumnLayout:
		return store.Column, nil
	case PAXLayout:
		return store.PAX, nil
	default:
		return "", fmt.Errorf("readopt: unknown layout %q", l)
	}
}

// Table is an opened table: a plain read-optimized directory written by
// a Loader or GenerateTPCH, or an ingest table created by CreateIngest,
// which accepts writes through Insert/InsertBatch while staying
// queryable. For ingest tables t is the generation current at open time
// and is used only for schema resolution (the schema never changes);
// queries pin the live generation through a snapshot.
type Table struct {
	t   *store.Table
	ing *wos.Store
}

// base returns the live read-optimized generation: the open-time table
// for plain tables, the current generation for ingest tables.
func (t *Table) base() *store.Table {
	if t.ing != nil {
		return t.ing.Gen()
	}
	return t.t
}

// LoadOptions configure a bulk load.
type LoadOptions struct {
	// PageSize defaults to 4096.
	PageSize int
	// ClusterBy names an int32 column to sort the load by. A clustered
	// table keeps each key range on few pages, which is what lets zone
	// maps prune selective scans down to those pages. Empty loads in
	// generation order. Only GenerateTPCH honours it.
	ClusterBy string
}

// OpenTable opens a table directory written by a Loader, by
// GenerateTPCH, or by CreateIngest (detected by its CURRENT file).
func OpenTable(dir string) (*Table, error) {
	if wos.IsIngestDir(dir) {
		return OpenIngest(dir, IngestOptions{})
	}
	t, err := store.Open(dir)
	if err != nil {
		return nil, err
	}
	return &Table{t: t}, nil
}

// GenerateTPCH bulk-loads n deterministic rows of one of the paper's
// TPC-H-derived schemas into dir and returns the opened table.
func GenerateTPCH(dir string, s *Schema, layout Layout, n int64, seed int64, opts LoadOptions) (*Table, error) {
	il, err := layout.internal()
	if err != nil {
		return nil, err
	}
	if opts.PageSize == 0 {
		opts.PageSize = page.DefaultSize
	}
	var t *store.Table
	if opts.ClusterBy != "" {
		attr := s.inner.AttrIndex(opts.ClusterBy)
		if attr < 0 {
			return nil, fmt.Errorf("readopt: cluster column %q not in schema %s", opts.ClusterBy, s.inner.Name)
		}
		t, err = store.LoadSyntheticClustered(dir, s.inner, il, opts.PageSize, seed, n, attr)
	} else {
		t, err = store.LoadSynthetic(dir, s.inner, il, opts.PageSize, seed, n)
	}
	if err != nil {
		return nil, err
	}
	return &Table{t: t}, nil
}

// Loader bulk-loads arbitrary rows into a new table.
type Loader struct {
	w   *store.Writer
	s   *Schema
	dir string
	buf []byte
}

// NewLoader creates a table at dir and returns a loader for it.
func NewLoader(dir string, s *Schema, layout Layout, opts LoadOptions) (*Loader, error) {
	il, err := layout.internal()
	if err != nil {
		return nil, err
	}
	if opts.PageSize == 0 {
		opts.PageSize = page.DefaultSize
	}
	w, err := store.Create(dir, s.inner, il, opts.PageSize)
	if err != nil {
		return nil, err
	}
	return &Loader{w: w, s: s, dir: dir, buf: make([]byte, s.inner.Width())}, nil
}

// Append adds one row. Values are given in column order: int32 columns
// accept int, int32 or int64; text columns accept string or []byte.
func (l *Loader) Append(values ...any) error {
	if err := encodeRow(l.s.inner, l.buf, values); err != nil {
		return err
	}
	return l.w.Append(l.buf)
}

// Close finalizes the table and returns it opened.
func (l *Loader) Close() (*Table, error) {
	if err := l.w.Close(); err != nil {
		return nil, err
	}
	return OpenTable(l.dir)
}

// Schema returns the table's definition.
func (t *Table) Schema() *Schema { return &Schema{inner: t.t.Schema} }

// Layout returns the table's physical design.
func (t *Table) Layout() Layout {
	switch t.t.Layout {
	case store.Row:
		return RowLayout
	case store.PAX:
		return PAXLayout
	default:
		return ColumnLayout
	}
}

// Rows returns the table's tuple count. For ingest tables this spans
// generation, runs and memtable — every row a query would see.
func (t *Table) Rows() int64 {
	if t.ing != nil {
		return t.ing.Rows()
	}
	return t.t.Tuples
}

// DataBytes returns the total on-disk size of the table's data files —
// what a full scan must read.
func (t *Table) DataBytes() int64 { return t.base().TotalDataBytes() }

// Dir returns the table directory.
func (t *Table) Dir() string {
	if t.ing != nil {
		return t.ing.Dir()
	}
	return t.t.Dir
}

// ScanStats reports the work a query performed, in the units of the
// paper's analysis. The JSON tags define how the server wire format
// (server.go) spells the fields.
type ScanStats struct {
	Instructions int64 `json:"instructions"`
	SeqMemBytes  int64 `json:"seq_mem_bytes"`
	RandMemLines int64 `json:"rand_mem_lines"`
	// L1MemBytes is the modeled L2-to-L1 traffic (cpumodel's L1Bytes
	// counter); the tracepool analyzer keeps it from being dropped on
	// any conversion out of the pool.
	L1MemBytes int64 `json:"l1_mem_bytes"`
	IORequests int64 `json:"io_requests"`
	IOBytes    int64 `json:"io_bytes"`
	// Pages counts the storage pages the scan crossed.
	Pages int64 `json:"pages,omitempty"`
	// PagesPruned counts pages zone maps proved free of qualifying rows
	// — skipped without decoding, most never read at all. PagesLateSkipped
	// counts payload pages late materialization skipped because no
	// qualifying row fell on them. BytesSkipped is the bytes of
	// statically pruned pages the I/O layer was never asked for. All
	// three measure work *not* done; they carry no time cost.
	PagesPruned      int64 `json:"pages_pruned,omitempty"`
	PagesLateSkipped int64 `json:"pages_late_skipped,omitempty"`
	BytesSkipped     int64 `json:"bytes_skipped,omitempty"`
}

// SelectivityThreshold returns the constant c such that the predicate
// {FirstColumn, "<", c} selects approximately the given fraction of a
// TPC-H benchmark table's rows — the knob behind the paper's
// "predicate(A1) yields X% selectivity" queries. It only applies to
// tables produced by GenerateTPCH, whose first attribute is uniform over
// a known domain.
func (t *Table) SelectivityThreshold(fraction float64) (int, error) {
	th, err := tpch.Threshold(t.t.Schema, fraction)
	return int(th), err
}

// Verify re-reads the table's data files and checks them against the
// checksums recorded at load time, returning the first corruption found.
func (t *Table) Verify() error { return t.base().VerifyIntegrity() }

// VerifyPages re-reads the table's data files page by page and checks
// each against its per-page CRC sidecar, naming the first corrupt page.
// For ingest tables the check covers the generation and every live run.
// Tables loaded before sidecars existed verify trivially. The returned
// error matches ErrCorrupt.
func (t *Table) VerifyPages() error {
	if t.ing != nil {
		return t.ing.VerifyPages()
	}
	return t.t.VerifyPages()
}

// Fsck runs every offline integrity check the store has: whole-file
// checksums, then per-page CRCs — and, for ingest tables, the manifest
// and every live run file. It is what `readoptd -fsck` runs per table.
func (t *Table) Fsck() error {
	if t.ing != nil {
		return t.ing.Fsck()
	}
	return t.t.Fsck()
}

// ColumnStat describes one column's storage.
type ColumnStat struct {
	Name        string
	Type        ColumnType
	Compression Compression
	// CodeBits is the stored width per value in bits.
	CodeBits int
	// DiskBytes is the column's on-disk footprint: the data file size for
	// a column layout, or the column's share of the single file
	// (pro-rated by code width) for row and PAX layouts.
	DiskBytes int64
}

// TableStats summarizes a table's storage.
type TableStats struct {
	Rows            int64
	DataBytes       int64
	BytesPerRow     float64
	CompressionRate float64 // decoded bytes / stored bytes
	Columns         []ColumnStat
}

// Stats reports the table's storage footprint per column — what the paper
// calls the physical design, in numbers.
func (t *Table) Stats() TableStats {
	b := t.base()
	sch := b.Schema
	st := TableStats{
		Rows:      b.Tuples,
		DataBytes: b.TotalDataBytes(),
	}
	if b.Tuples > 0 {
		st.BytesPerRow = float64(st.DataBytes) / float64(b.Tuples)
	}
	if st.DataBytes > 0 {
		st.CompressionRate = float64(sch.Width()) * float64(b.Tuples) / float64(st.DataBytes)
	}
	totalBits := sch.TotalBits()
	for i, a := range sch.Attrs {
		cs := ColumnStat{
			Name:     a.Name,
			CodeBits: a.CodeBits(),
		}
		if a.Type.Kind == schema.Int32 {
			cs.Type = Int32
		} else {
			cs.Type = Text(a.Type.Size)
		}
		cs.Compression = encToCompression[a.Enc.String()]
		if b.Layout == store.Column {
			if n, ok := b.DataFileSize(store.ColumnFileName(sch, i)); ok {
				cs.DiskBytes = n
			}
		} else if totalBits > 0 {
			cs.DiskBytes = st.DataBytes * int64(a.CodeBits()) / int64(totalBits)
		}
		st.Columns = append(st.Columns, cs)
	}
	return st
}
