// Capacity planning: use the paper's analytical model (Section 5) to
// decide between row and column layouts across hardware configurations —
// the model folds CPUs, disks and competing traffic into one parameter,
// cycles per disk byte (cpdb).
//
//	go run ./examples/capacity
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/readoptdb/readopt"
)

func main() {
	configs := []struct {
		name string
		hw   readopt.Hardware
	}{
		{"paper 2006 testbed (1 CPU, 3 disks)", readopt.PaperHardware()},
		{"paper CPU over a single disk", readopt.Hardware{CPUs: 1, ClockGHz: 3.2, Disks: 1, DiskMBps: 60}},
		{"modern desktop (2 CPUs, 1 disk)", readopt.Hardware{CPUs: 2, ClockGHz: 3.2, Disks: 1, DiskMBps: 120}},
		{"big analytics box (8 CPUs, 2 disks)", readopt.Hardware{CPUs: 8, ClockGHz: 3.0, Disks: 2, DiskMBps: 100}},
		{"storage-heavy node (2 CPUs, 12 disks)", readopt.Hardware{CPUs: 2, ClockGHz: 3.0, Disks: 12, DiskMBps: 100}},
	}
	workloads := []struct {
		name string
		w    readopt.WorkloadSpec
	}{
		{"lean tuples, half selected", readopt.WorkloadSpec{TupleBytes: 8, NumColumns: 16, ProjectedFraction: 0.5, Selectivity: 0.10}},
		{"ORDERS-like, half selected", readopt.WorkloadSpec{TupleBytes: 32, NumColumns: 16, ProjectedFraction: 0.5, Selectivity: 0.10}},
		{"wide tuples, 1/4 selected", readopt.WorkloadSpec{TupleBytes: 150, NumColumns: 16, ProjectedFraction: 0.25, Selectivity: 0.10}},
		{"wide tuples, all selected", readopt.WorkloadSpec{TupleBytes: 150, NumColumns: 16, ProjectedFraction: 1.0, Selectivity: 0.10}},
	}

	fmt.Println("Layout advisor: predicted speedup of a column store over a row store")
	fmt.Println("(>1 means choose columns; the paper's Figure 2, as an API)")
	fmt.Println()
	for _, cfg := range configs {
		fmt.Printf("%s — %.0f cycles per disk byte\n", cfg.name, cfg.hw.CPDB())
		for _, wl := range workloads {
			p, err := readopt.PredictSpeedup(cfg.hw, wl.w)
			if err != nil {
				log.Fatal(err)
			}
			verdict := "columns"
			if p.Speedup < 1 {
				verdict = "rows"
			} else if p.Speedup < 1.05 {
				verdict = "either"
			}
			fmt.Printf("  %-28s speedup %5.2fx -> %s (row %5.1fM col %5.1fM tuples/s)\n",
				wl.name, p.Speedup, verdict, p.RowRate/1e6, p.ColumnRate/1e6)
		}
		fmt.Println()
	}

	be := readopt.IndexScanBreakEven(5*time.Millisecond, 300, 128)
	fmt.Printf("Aside (Section 2.1.1): an unclustered index only beats a sequential scan\n")
	fmt.Printf("below %.4f%% selectivity on a 300MB/s array with 5ms seeks and 128B tuples.\n", be*100)
}
