package readopt

// QueryParallel executes q with a morsel-driven parallel plan: the
// table's rows are split into up to dop contiguous page-aligned ranges,
// each scanned (with predicates, projection and — when the query
// aggregates — a partial aggregation) by its own worker, and the worker
// streams are concatenated in partition order by a bounded exchange
// before the serial tail (aggregate merge, ordering, limits) runs. This
// is the paper's "degree of parallelism" knob (Section 4, capacity
// planning): the paper keeps its engine single-threaded and notes the
// results trivially extend to multiple CPUs — this is that extension.
//
// Results are byte-identical to Query's for any dop. Unlike earlier
// versions, partition outputs are streamed through the exchange rather
// than materialized, so high-selectivity scans no longer buffer the
// whole qualifying set in memory.
func (t *Table) QueryParallel(q Query, dop int) (*Rows, error) {
	return t.QueryExec(q, ExecOptions{Dop: dop})
}
