package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// SelBounds guards the vectorized scan's trust boundary. The selection
// kernels (compress.EvalPredicate / RefineSel) emit page-row indices as
// raw int32s; the consumers that index with them — Materialize's
// per-codec loops, Block.AllocN's region math — carry the bounds
// checks (and readoptdebug assertions) that make a corrupt or stale
// selection vector fail loudly instead of reading the wrong tuple. Any
// OTHER code that turns a sel element into a slice index silently
// bypasses those checks: a page shorter than the vector (torn read,
// clipped range) becomes an out-of-bounds panic at best and wrong
// query results at worst.
//
// The analyzer taints every value passed as a selection vector to
// EvalPredicate/RefineSel (fields taint package-wide, since producer
// and consumer are usually different methods), propagates through
// slicing and element reads, and reports:
//
//   - a sel element used inside an index or slice-bound expression
//   - a sel vector passed to a call that is not a known bounds-checked
//     consumer (Materialize, AllocN, the kernels themselves, append/
//     copy/len/cap)
//
// A function named Materialize or AllocN, or one marked
// `//readopt:selconsumer`, is a declared consumer: it owns the bounds
// check and may index freely.
//
// Late materialization adds a second tier: row POSITIONS. The vector
// drive turns each sel element into a global row position
// (rowBase+int64(s)) and accumulates them in an []int64 position
// vector; payload cursors later seek and fetch by position. That
// arithmetic step launders the sel taint past the rules above, so the
// analyzer tracks it as its own taint kind: any value computed from a
// sel element, and any []int64 that accumulates such values, is a
// position. Positions cross pages, so nothing but a cursor that knows
// the current page bounds can safely index with one. Reports:
//
//   - a position used inside an index or slice-bound expression
//   - a position, or the position vector, passed to a call that is not
//     a `//readopt:posconsumer` (or an allowed builtin / conversion)
//
// and, independently of any taint, validates the directive's contract:
// a //readopt:posconsumer function with an int64 parameter must
// compare that parameter (or a value derived from it) somewhere in its
// body — the bounds check it claims to own.
var SelBounds = &Analyzer{
	Name: "selbounds",
	Doc: "selection-vector indices from EvalPredicate/RefineSel may only become slice indices " +
		"inside bounds-checked consumers (Materialize/AllocN or //readopt:selconsumer); " +
		"row positions derived from them may only reach //readopt:posconsumer functions, " +
		"which must bounds-check them",
	Run: runSelBounds,
}

// selProducers emit selection vectors; selConsumers are the call names
// allowed to receive one. posBuiltins are the builtins a position
// vector (or element) may flow through — named functions need the
// //readopt:posconsumer directive instead.
var (
	selProducers = map[string]bool{"EvalPredicate": true, "RefineSel": true}
	selConsumers = map[string]bool{
		"EvalPredicate": true, "RefineSel": true, "Materialize": true, "AllocN": true,
		"append": true, "copy": true, "len": true, "cap": true, "min": true, "max": true,
	}
	posBuiltins = map[string]bool{
		"append": true, "copy": true, "len": true, "cap": true, "min": true, "max": true,
	}
)

func runSelBounds(pass *Pass) error {
	checkPosConsumerDecls(pass)
	tainted := collectSelVectors(pass)
	if len(tainted) == 0 {
		return nil
	}
	declaredSel := declaredDirectiveFuncs(pass, directiveSelConsumer)
	declaredPos := declaredDirectiveFuncs(pass, directivePosConsumer)
	posVecs := collectPosVectors(pass, tainted)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if selConsumers[fd.Name.Name] || declaredSel[fd.Name.Name] || declaredPos[fd.Name.Name] {
				continue
			}
			checkSelUses(pass, fd, tainted, posVecs, declaredSel, declaredPos)
		}
	}
	return nil
}

// declaredDirectiveFuncs collects the package's functions carrying the
// directive. For selconsumer their bodies may index with sel elements
// and vectors may be passed TO them; likewise posconsumer for
// positions — the directive asserts they carry their own bounds checks.
func declaredDirectiveFuncs(pass *Pass, directive string) map[string]bool {
	out := map[string]bool{}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && hasDirective(fd.Doc, directive) {
				out[fd.Name.Name] = true
			}
		}
	}
	return out
}

// collectSelVectors finds every object (variable or struct field)
// passed as an []int32 argument to a selection kernel anywhere in the
// package. Field objects make the taint flow across methods: prepPage
// fills cur.sel, driveDeepestVec consumes it.
func collectSelVectors(pass *Pass) map[types.Object]bool {
	tainted := map[types.Object]bool{}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !selProducers[calleeName(call)] {
				return true
			}
			for _, arg := range call.Args {
				if !isInt32Slice(pass.TypesInfo.Types[arg].Type) {
					continue
				}
				if obj := selBaseObject(pass, arg); obj != nil {
					tainted[obj] = true
				}
			}
			return true
		})
	}
	return tainted
}

// collectPosVectors finds every []int64 object that accumulates values
// derived from selection-vector elements — the late-materialization
// position vectors (ColScanner.positions). As with sel vectors, field
// objects carry the taint across methods: driveDeepestVec fills
// c.positions, attach drains it.
func collectPosVectors(pass *Pass, selGlobal map[types.Object]bool) map[types.Object]bool {
	pos := map[types.Object]bool{}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			slices, elems := propagateSelTaint(pass, fd, selGlobal)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || calleeName(call) != "append" || len(call.Args) < 2 {
					return true
				}
				dst := selBaseObject(pass, call.Args[0])
				if dst == nil || !isInt64Slice(dst.Type()) {
					return true
				}
				for _, arg := range call.Args[1:] {
					if taintedElemExpr(pass, arg, slices, elems) {
						pos[dst] = true
					}
				}
				return true
			})
		}
	}
	return pos
}

func isInt32Slice(t types.Type) bool { return isSliceOf(t, types.Int32) }
func isInt64Slice(t types.Type) bool { return isSliceOf(t, types.Int64) }

func isSliceOf(t types.Type, kind types.BasicKind) bool {
	if t == nil {
		return false
	}
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == kind
}

// selBaseObject resolves an expression to the variable or field object
// it reads, unwrapping slicing: `cur.sel[:n]` resolves to the sel
// field, `sel[lo:hi]` to the sel variable.
func selBaseObject(pass *Pass, e ast.Expr) types.Object {
	for {
		e = unparen(e)
		if se, ok := e.(*ast.SliceExpr); ok {
			e = se.X
			continue
		}
		break
	}
	switch e := e.(type) {
	case *ast.Ident:
		if obj := pass.TypesInfo.Uses[e]; obj != nil {
			return obj
		}
		return pass.TypesInfo.Defs[e]
	case *ast.SelectorExpr:
		if s, ok := pass.TypesInfo.Selections[e]; ok && s.Kind() == types.FieldVal {
			return s.Obj()
		}
	}
	return nil
}

// taintedSliceOf reports whether e reads (a slice of) an object in set.
func taintedSliceOf(pass *Pass, e ast.Expr, set map[types.Object]bool) bool {
	obj := selBaseObject(pass, e)
	return obj != nil && set[obj]
}

// taintedElemExpr reports whether e's value involves one element of a
// tainted vector — a read of an element-tainted variable, or an inline
// index into a tainted vector, anywhere inside e.
func taintedElemExpr(pass *Pass, e ast.Expr, slices, elems map[types.Object]bool) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.Ident:
			if obj := pass.TypesInfo.Uses[n]; obj != nil && elems[obj] {
				found = true
				return false
			}
		case *ast.IndexExpr:
			if taintedSliceOf(pass, n.X, slices) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// propagateSelTaint runs the per-function sel fixpoint alone (no
// position tier) — enough for collectPosVectors to see which appended
// values are element-derived.
func propagateSelTaint(pass *Pass, fd *ast.FuncDecl, global map[types.Object]bool) (slices, elems map[types.Object]bool) {
	slices = map[types.Object]bool{}
	elems = map[types.Object]bool{}
	for o := range global {
		slices[o] = true
	}
	for changed := true; changed; {
		changed = false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Lhs) != len(n.Rhs) {
					return true
				}
				for i, lhs := range n.Lhs {
					obj := selBaseObject(pass, lhs)
					if obj == nil {
						continue
					}
					rhs := unparen(n.Rhs[i])
					if ie, ok := rhs.(*ast.IndexExpr); ok && taintedSliceOf(pass, ie.X, slices) {
						if !elems[obj] {
							elems[obj] = true
							changed = true
						}
					} else if taintedSliceOf(pass, rhs, slices) && !slices[obj] {
						slices[obj] = true
						changed = true
					}
				}
			case *ast.RangeStmt:
				if n.Value != nil && taintedSliceOf(pass, n.X, slices) {
					if obj := selBaseObject(pass, n.Value); obj != nil && !elems[obj] {
						elems[obj] = true
						changed = true
					}
				}
			}
			return true
		})
	}
	return slices, elems
}

// checkSelUses runs the per-function taint propagation across both
// tiers and reports violations.
func checkSelUses(pass *Pass, fd *ast.FuncDecl, selGlobal, posGlobal map[types.Object]bool, declaredSel, declaredPos map[string]bool) {
	// slices/elems: (elements of) a selection vector.
	// posSlices/posElems: (elements of) a position vector.
	slices := map[types.Object]bool{}
	elems := map[types.Object]bool{}
	posSlices := map[types.Object]bool{}
	posElems := map[types.Object]bool{}
	for o := range selGlobal {
		slices[o] = true
	}
	for o := range posGlobal {
		posSlices[o] = true
	}
	selSlice := func(e ast.Expr) bool { return taintedSliceOf(pass, e, slices) }
	posSlice := func(e ast.Expr) bool { return taintedSliceOf(pass, e, posSlices) }
	selElem := func(e ast.Expr) bool { return taintedElemExpr(pass, e, slices, elems) }
	posElem := func(e ast.Expr) bool { return taintedElemExpr(pass, e, posSlices, posElems) }

	// Propagate to a fixpoint: assignments and ranges create new
	// tainted objects, which can feed further assignments. A value
	// COMPUTED from a sel element (rowBase+int64(s)) is no longer a
	// page-row index but a row position, so arithmetic derivation moves
	// the taint to the position tier instead of dropping it.
	for changed := true; changed; {
		changed = false
		mark := func(m map[types.Object]bool, obj types.Object) {
			if obj != nil && !m[obj] {
				m[obj] = true
				changed = true
			}
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Lhs) != len(n.Rhs) {
					return true
				}
				for i, lhs := range n.Lhs {
					obj := selBaseObject(pass, lhs)
					if obj == nil {
						continue
					}
					rhs := unparen(n.Rhs[i])
					if ie, ok := rhs.(*ast.IndexExpr); ok {
						if selSlice(ie.X) {
							mark(elems, obj)
						} else if posSlice(ie.X) {
							mark(posElems, obj)
						}
					} else if robj := selBaseObject(pass, rhs); robj != nil {
						// Plain copy (possibly through slicing): the
						// taint kind is preserved.
						if elems[robj] {
							mark(elems, obj)
						}
						if posElems[robj] {
							mark(posElems, obj)
						}
						if slices[robj] {
							mark(slices, obj)
						}
						if posSlices[robj] {
							mark(posSlices, obj)
						}
					} else if selElem(rhs) || posElem(rhs) {
						mark(posElems, obj)
					}
				}
			case *ast.RangeStmt:
				if n.Value != nil {
					if selSlice(n.X) {
						mark(elems, selBaseObject(pass, n.Value))
					} else if posSlice(n.X) {
						mark(posElems, selBaseObject(pass, n.Value))
					}
				}
			}
			return true
		})
	}

	// Violations.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.IndexExpr:
			// Indexing the vector itself is the producer's own
			// read/write; the danger is an ELEMENT indexing something
			// else.
			if selSlice(n.X) || posSlice(n.X) {
				return true
			}
			if selElem(n.Index) {
				pass.Reportf(n.Index.Pos(), "selection-vector element used as a slice index outside a bounds-checked consumer: route this through Materialize/AllocN or mark the function //readopt:selconsumer with its own bounds check")
			} else if posElem(n.Index) {
				pass.Reportf(n.Index.Pos(), "position-vector element used as a slice index before a bounds check: positions cross pages — fetch through a //readopt:posconsumer that validates the position against the current page")
			}
		case *ast.SliceExpr:
			if selSlice(n.X) || posSlice(n.X) {
				return true
			}
			for _, bound := range []ast.Expr{n.Low, n.High, n.Max} {
				if bound == nil {
					continue
				}
				if selElem(bound) {
					pass.Reportf(bound.Pos(), "selection-vector element used as a slice bound outside a bounds-checked consumer: route this through Materialize/AllocN or mark the function //readopt:selconsumer with its own bounds check")
					break
				}
				if posElem(bound) {
					pass.Reportf(bound.Pos(), "position-vector element used as a slice bound before a bounds check: positions cross pages — fetch through a //readopt:posconsumer that validates the position against the current page")
					break
				}
			}
		case *ast.CallExpr:
			if isConversion(pass, n) {
				return true
			}
			name := calleeName(n)
			selOK := selConsumers[name] || declaredSel[name]
			posOK := posBuiltins[name] || declaredPos[name]
			for _, arg := range n.Args {
				if !selOK && selSlice(arg) {
					pass.Reportf(arg.Pos(), "selection vector passed to %s, which is not a known bounds-checked consumer: use Materialize/AllocN or mark the callee //readopt:selconsumer", name)
				}
				if posOK {
					continue
				}
				if posSlice(arg) {
					pass.Reportf(arg.Pos(), "position vector passed to %s, which is not a declared //readopt:posconsumer: only a cursor that bounds-checks positions against its page may consume them", name)
				} else if posElem(arg) {
					pass.Reportf(arg.Pos(), "position passed to %s, which is not a declared //readopt:posconsumer: only a cursor that bounds-checks positions against its page may consume them", name)
				}
			}
		}
		return true
	})
}

// checkPosConsumerDecls validates the contract behind the directive: a
// //readopt:posconsumer function owns the bounds check for its int64
// position parameter, so its body must compare the parameter (or a
// value derived from it) against something — otherwise the directive
// is a lie and every caller's trust is misplaced.
func checkPosConsumerDecls(pass *Pass) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasDirective(fd.Doc, directivePosConsumer) {
				continue
			}
			params := int64Params(pass, fd)
			if len(params) == 0 {
				continue
			}
			if !comparesAny(pass, fd.Body, params) {
				pass.Reportf(fd.Pos(), "%s is marked //readopt:posconsumer but never bounds-checks its int64 position parameter", fd.Name.Name)
			}
		}
	}
}

// int64Params collects a function's int64 parameters — the candidate
// position arguments a posconsumer must validate.
func int64Params(pass *Pass, fd *ast.FuncDecl) map[types.Object]bool {
	out := map[types.Object]bool{}
	if fd.Type.Params == nil {
		return out
	}
	for _, f := range fd.Type.Params.List {
		for _, name := range f.Names {
			obj := pass.TypesInfo.Defs[name]
			if obj == nil {
				continue
			}
			if b, ok := obj.Type().Underlying().(*types.Basic); ok && b.Kind() == types.Int64 {
				out[obj] = true
			}
		}
	}
	return out
}

// comparesAny reports whether the body contains an ordered comparison
// (< > <= >=) mentioning one of the seed objects or a value derived
// from one by assignment — `i := int(pos - start); if i < 0 …` counts.
func comparesAny(pass *Pass, body *ast.BlockStmt, seed map[types.Object]bool) bool {
	tainted := map[types.Object]bool{}
	for o := range seed {
		tainted[o] = true
	}
	mentions := func(e ast.Expr) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if obj := pass.TypesInfo.Uses[id]; obj != nil && tainted[obj] {
					found = true
				}
			}
			return !found
		})
		return found
	}
	for changed := true; changed; {
		changed = false
		ast.Inspect(body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, lhs := range as.Lhs {
				if !mentions(as.Rhs[i]) {
					continue
				}
				if obj := selBaseObject(pass, lhs); obj != nil && !tainted[obj] {
					tainted[obj] = true
					changed = true
				}
			}
			return true
		})
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		be, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		switch be.Op {
		case token.LSS, token.GTR, token.LEQ, token.GEQ:
			if mentions(be.X) || mentions(be.Y) {
				found = true
			}
		}
		return !found
	})
	return found
}

// isConversion reports whether the call is a type conversion
// (int64(s), int(x)) rather than a function call.
func isConversion(pass *Pass, call *ast.CallExpr) bool {
	tv, ok := pass.TypesInfo.Types[unparen(call.Fun)]
	return ok && tv.IsType()
}
