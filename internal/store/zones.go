package store

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"github.com/readoptdb/readopt/internal/fault"
	"github.com/readoptdb/readopt/internal/page"
	"github.com/readoptdb/readopt/internal/schema"
)

// ZoneMap records, for one int32 attribute of one data file, the
// minimum and maximum value stored on each page. Zone maps are computed
// at write time in decoded value space — never in code space — so the
// plan layer can test SARGable predicate constants against them without
// touching dictionaries or page bases. Text attributes carry no zone
// maps and are never pruned on.
type ZoneMap struct {
	Attr int     `json:"attr"`
	Min  []int32 `json:"min"`
	Max  []int32 `json:"max"`
}

// zoneTracker accumulates one attribute's per-page min/max while the
// writer packs pages.
type zoneTracker struct {
	attr     int
	min, max []int32
	curMin   int32
	curMax   int32
	n        int // values in the current (unflushed) page
}

func (z *zoneTracker) add(v int32) {
	if z.n == 0 {
		z.curMin, z.curMax = v, v
	} else {
		if v < z.curMin {
			z.curMin = v
		}
		if v > z.curMax {
			z.curMax = v
		}
	}
	z.n++
}

// flushPage seals the current page's zone entry; call exactly when the
// page builder flushes.
func (z *zoneTracker) flushPage() {
	if z.n == 0 {
		return
	}
	z.min = append(z.min, z.curMin)
	z.max = append(z.max, z.curMax)
	z.n = 0
}

func (z *zoneTracker) zoneMap() ZoneMap {
	return ZoneMap{Attr: z.attr, Min: z.min, Max: z.max}
}

// newZoneTrackers returns one tracker per int32 attribute (nil entries
// for text attributes).
func newZoneTrackers(s *schema.Schema) []*zoneTracker {
	out := make([]*zoneTracker, s.NumAttrs())
	for i, a := range s.Attrs {
		if a.Type.Kind == schema.Int32 {
			out[i] = &zoneTracker{attr: i}
		}
	}
	return out
}

// int32At reads the decoded little-endian int32 of attribute value v.
func int32At(v []byte) int32 {
	return int32(binary.LittleEndian.Uint32(v))
}

// checkZoneLengths validates that every zone map in m covers exactly
// one entry per page of its file — the cheap open-time check; Fsck does
// the deep recomputation.
func checkZoneLengths(m *Meta) error {
	for name, zones := range m.Zones {
		size, ok := m.FileSizes[name]
		if !ok {
			return fmt.Errorf("store: zone maps for unknown data file %s", name)
		}
		pages := int(size / int64(m.PageSize))
		for _, z := range zones {
			if z.Attr < 0 || z.Attr >= len(m.Attrs) {
				return fmt.Errorf("store: zone map for %s names attribute %d of %d", name, z.Attr, len(m.Attrs))
			}
			if len(z.Min) != pages || len(z.Max) != pages {
				return fmt.Errorf("store: zone map for %s attribute %d holds %d/%d entries, want %d pages",
					name, z.Attr, len(z.Min), len(z.Max), pages)
			}
		}
	}
	return nil
}

// Zones returns the zone maps of the named data file, or nil for tables
// written before zone maps existed (they scan unpruned). The slices are
// shared — do not mutate them.
func (t *Table) Zones(name string) []ZoneMap { return t.zones[name] }

// HasZones reports whether the table carries any zone maps.
func (t *Table) HasZones() bool { return len(t.zones) > 0 }

// VerifyZones re-reads every data file page by page, recomputes each
// int32 attribute's per-page min/max from the decoded values, and
// checks them against the persisted zone maps. A mismatch means a scan
// could silently prune pages holding qualifying rows, so findings are
// tagged fault.ErrCorrupt. Tables without zone maps verify trivially.
func (t *Table) VerifyZones() error {
	for name, zones := range t.zones {
		if len(zones) == 0 {
			continue
		}
		if err := t.verifyFileZones(name, zones); err != nil {
			return err
		}
	}
	return nil
}

func (t *Table) verifyFileZones(name string, zones []ZoneMap) error {
	f, err := os.Open(filepath.Join(t.Dir, name))
	if err != nil {
		return fmt.Errorf("store: verify zones %s: %w", name, err)
	}
	defer f.Close()

	// One whole-page decoder per layout; decoded holds either the
	// column page's value array or the page's full decoded tuples.
	var decodePage func(pg []byte) (n int, err error)
	var valueAt func(i, attr int) int32
	switch t.Layout {
	case Column:
		attr := zones[0].Attr
		cr, err := page.NewColReader(t.Schema.Attrs[attr], t.PageSize, t.Dicts[attr])
		if err != nil {
			return err
		}
		size := t.Schema.Attrs[attr].Type.Size
		decoded := make([]byte, cr.Capacity()*size)
		decodePage = func(pg []byte) (int, error) { return cr.Decode(pg, decoded) }
		valueAt = func(i, _ int) int32 { return int32At(decoded[i*size:]) }
	case Row:
		rr, err := page.NewRowReader(t.Schema, t.PageSize, t.Dicts)
		if err != nil {
			return err
		}
		decoded := make([]byte, rr.Capacity()*t.Schema.Width())
		decodePage = func(pg []byte) (int, error) { return rr.Decode(pg, decoded) }
		valueAt = func(i, attr int) int32 {
			return int32At(decoded[i*t.Schema.Width()+t.Schema.Offset(attr):])
		}
	case PAX:
		pr, err := page.NewPAXReader(t.Schema, t.PageSize, t.Dicts)
		if err != nil {
			return err
		}
		decoded := make([]byte, pr.Capacity()*t.Schema.Width())
		decodePage = func(pg []byte) (int, error) { return pr.Decode(pg, decoded) }
		valueAt = func(i, attr int) int32 {
			return int32At(decoded[i*t.Schema.Width()+t.Schema.Offset(attr):])
		}
	}

	pg := make([]byte, t.PageSize)
	for p := 0; p < len(zones[0].Min); p++ {
		if _, err := io.ReadFull(f, pg); err != nil {
			return fmt.Errorf("store: verify zones %s: page %d: %w", name, p, err)
		}
		n, err := decodePage(pg)
		if err != nil {
			return fmt.Errorf("store: verify zones %s: page %d: %w", name, p, err)
		}
		if n == 0 {
			return fault.Corruptf("store: verify zones %s: page %d is empty but has a zone entry", name, p)
		}
		for _, z := range zones {
			lo, hi := valueAt(0, z.Attr), valueAt(0, z.Attr)
			for i := 1; i < n; i++ {
				v := valueAt(i, z.Attr)
				if v < lo {
					lo = v
				}
				if v > hi {
					hi = v
				}
			}
			if lo != z.Min[p] || hi != z.Max[p] {
				return fault.Corruptf("store: zone map for %s attribute %d page %d records [%d, %d], data holds [%d, %d]",
					name, z.Attr, p, z.Min[p], z.Max[p], lo, hi)
			}
		}
	}
	return nil
}
