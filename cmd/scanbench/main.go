// Command scanbench runs one real scan query against loaded tables and
// reports wall-clock time, throughput, and the engine's work accounting —
// a benchmarking tool for measuring the performance limit of TPC-H-style
// selection queries on this machine, in the spirit of the paper's
// published benchmark code.
//
//	dbgen -table orders -layout column -rows 2000000 -dir /tmp/ord
//	scanbench -dir /tmp/ord -cols 3 -selectivity 0.1
//
// With -dops, each table is swept across the listed degrees of
// parallelism (morsel-driven scans through the plan layer) and the
// speedup over the dop-1 run is reported; -json writes the sweep as a
// machine-readable report:
//
//	scanbench -dir /tmp/row,/tmp/col,/tmp/pax -dops 1,2,4,8 -json results/BENCH_parallel.json
//
// -scalar disables the vectorized operate-on-compressed kernels, so the
// kernels' effect is the ratio of two runs. -guard runs the regression
// guard against a checked-in floor file instead of printing a sweep; see
// guard() for the policy.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"github.com/readoptdb/readopt"
)

// runReport is one (table, dop) measurement in the JSON report.
type runReport struct {
	Dop          int     `json:"dop"`
	EffectiveDop int     `json:"effective_dop"`
	Micros       int64   `json:"micros"`
	TuplesPerSec float64 `json:"tuples_per_sec"`
	// Speedup is the dop-1 wall time divided by this run's (1.0 for the
	// serial run itself).
	Speedup    float64 `json:"speedup"`
	Qualifying int64   `json:"qualifying"`
	IOBytes    int64   `json:"io_bytes"`
}

// selReport is one selectivity point of a -sel sweep: the scan's wall
// time against the I/O it did and — the point of zone maps — the I/O it
// provably avoided.
type selReport struct {
	// Selectivity is the requested fraction; -1 marks the point query.
	Selectivity      float64 `json:"selectivity"`
	Micros           int64   `json:"micros"`
	Qualifying       int64   `json:"qualifying"`
	IOBytes          int64   `json:"io_bytes"`
	BytesSkipped     int64   `json:"bytes_skipped"`
	PagesTouched     int64   `json:"pages_touched"`
	PagesPruned      int64   `json:"pages_pruned"`
	PagesLateSkipped int64   `json:"pages_late_skipped"`
}

// tableReport is one table's sweep in the JSON report.
type tableReport struct {
	Table       string         `json:"table"`
	Layout      readopt.Layout `json:"layout"`
	Rows        int64          `json:"rows"`
	DataBytes   int64          `json:"data_bytes"`
	Cols        int            `json:"cols"`
	Selectivity float64        `json:"selectivity"`
	Agg         bool           `json:"agg"`
	// ScalarMicros is the best dop-1 wall time with the vectorized
	// kernels disabled, and KernelSpeedup that divided by the dop-1
	// vectorized time — the operate-on-compressed win, independent of
	// core count.
	ScalarMicros  int64       `json:"scalar_micros,omitempty"`
	KernelSpeedup float64     `json:"kernel_speedup,omitempty"`
	Runs          []runReport `json:"runs,omitempty"`
	// Sel is the -sel selectivity sweep, most selective first.
	Sel []selReport `json:"sel,omitempty"`
}

// report is the top of the JSON file: the environment the numbers were
// measured in, then the per-table sweeps. Wall-clock speedup at dop N is
// bounded by the host's core count, so a report is only comparable to
// another taken on a host with the same cpus.
type report struct {
	Cpus       int           `json:"cpus"`
	Gomaxprocs int           `json:"gomaxprocs"`
	Scalar     bool          `json:"scalar"`
	Tables     []tableReport `json:"tables"`
}

// floorFile is the checked-in regression floor -guard compares against.
type floorFile struct {
	// MinDop4Speedup is the wall-clock speedup floor at dop 4 on hosts
	// with at least 4 CPUs.
	MinDop4Speedup float64 `json:"min_dop4_speedup"`
	// MinDop4SpeedupSmallHost is the dop-4 floor on hosts with fewer
	// than 4 CPUs, where parallel wall-clock gains are impossible and
	// the guard only catches the parallel path becoming slower than
	// serial.
	MinDop4SpeedupSmallHost float64 `json:"min_dop4_speedup_small_host"`
	// MinKernelSpeedup is the floor on scalar-time / vectorized-time at
	// dop 1 — the operate-on-compressed win, which no core count can
	// mask.
	MinKernelSpeedup float64 `json:"min_kernel_speedup"`
	// MinSelectiveIOReduction is the floor on full-scan I/O bytes
	// divided by point-query I/O bytes in a -sel sweep over a clustered
	// table — how much reading the zone maps must save at the selective
	// end. Sweeps are only guarded when this floor is set.
	MinSelectiveIOReduction float64 `json:"min_selective_io_reduction,omitempty"`
	// RegressionMargin is the fraction of each floor a run may fall
	// short by before the guard fails (0.20 = fail on >20% regression).
	RegressionMargin float64 `json:"regression_margin"`
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "scanbench: "+format+"\n", args...)
	os.Exit(1)
}

func parseDops(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		d, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || d < 1 {
			return nil, fmt.Errorf("bad dop %q", f)
		}
		out = append(out, d)
	}
	return out, nil
}

// bench runs q against tbl at the given dop, repeat times, and returns
// the best run.
func bench(tbl *readopt.Table, q readopt.Query, dop, repeat int, scalar bool) (runReport, error) {
	best := runReport{Dop: dop, Micros: 1<<63 - 1}
	for i := 0; i < repeat; i++ {
		start := time.Now()
		rows, err := tbl.QueryExec(q, readopt.ExecOptions{Dop: dop, Scalar: scalar})
		if err != nil {
			return best, err
		}
		var n int64
		for rows.Next() {
			n++
		}
		if err := rows.Err(); err != nil {
			rows.Close()
			return best, err
		}
		elapsed := time.Since(start)
		stats := rows.Stats()
		eff := rows.Dop()
		rows.Close()
		if us := elapsed.Microseconds(); us < best.Micros {
			best.Micros = us
			best.EffectiveDop = eff
			best.TuplesPerSec = float64(tbl.Rows()) / elapsed.Seconds()
			best.Qualifying = n
			best.IOBytes = stats.IOBytes
		}
	}
	return best, nil
}

// buildQuery assembles the benchmark query for one table.
func buildQuery(tbl *readopt.Table, cols int, selectivity float64, agg bool) (readopt.Query, error) {
	all := tbl.Schema().Columns()
	if cols < 1 || cols > len(all) {
		return readopt.Query{}, fmt.Errorf("-cols must be in 1..%d", len(all))
	}
	var q readopt.Query
	if agg {
		q.Aggs = []readopt.Agg{{Func: "count"}, {Func: "sum", Column: all[0]}}
	} else {
		q.Select = all[:cols]
	}
	if selectivity < 1 {
		th, err := tbl.SelectivityThreshold(selectivity)
		if err != nil {
			return readopt.Query{}, err
		}
		q.Where = []readopt.Cond{{Column: all[0], Op: "<", Value: th}}
	}
	return q, nil
}

// sweepTable runs one table's dop sweep and, when kernelRatio is set,
// the extra scalar dop-1 run that measures the kernels' effect.
func sweepTable(tbl *readopt.Table, q readopt.Query, sweep []int, repeat int, scalar, kernelRatio bool) (tableReport, error) {
	rep := tableReport{
		Table:     tbl.Schema().Name(),
		Layout:    tbl.Layout(),
		Rows:      tbl.Rows(),
		DataBytes: tbl.DataBytes(),
	}
	var serialMicros int64
	for _, dop := range sweep {
		r, err := bench(tbl, q, dop, repeat, scalar)
		if err != nil {
			return rep, err
		}
		if dop == 1 {
			serialMicros = r.Micros
		}
		if serialMicros > 0 {
			r.Speedup = float64(serialMicros) / float64(r.Micros)
		}
		rep.Runs = append(rep.Runs, r)
		fmt.Printf("dop %d (effective %d): %v, %.0f tuples/sec, speedup %.2fx, %d qualifying, io %d bytes\n",
			dop, r.EffectiveDop, time.Duration(r.Micros)*time.Microsecond, r.TuplesPerSec, r.Speedup, r.Qualifying, r.IOBytes)
	}
	// Only column tables have a vectorized kernel path; row/PAX scans
	// run identically either way, so a kernel ratio there is noise.
	if kernelRatio && !scalar && serialMicros > 0 && tbl.Layout() == readopt.ColumnLayout {
		r, err := bench(tbl, q, 1, repeat, true)
		if err != nil {
			return rep, err
		}
		rep.ScalarMicros = r.Micros
		rep.KernelSpeedup = float64(r.Micros) / float64(serialMicros)
		fmt.Printf("dop 1 scalar: %v, kernel speedup %.2fx\n",
			time.Duration(r.Micros)*time.Microsecond, rep.KernelSpeedup)
	}
	return rep, nil
}

// parseSels parses the -sel list: "point" (an equality query on the
// median key, reported as selectivity -1) or a fraction in (0, 1].
func parseSels(s string) ([]float64, error) {
	var out []float64
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "point" {
			out = append(out, -1)
			continue
		}
		v, err := strconv.ParseFloat(f, 64)
		if err != nil || v <= 0 || v > 1 {
			return nil, fmt.Errorf("bad selectivity %q (want \"point\" or a fraction in (0, 1])", f)
		}
		out = append(out, v)
	}
	return out, nil
}

// buildSelQuery assembles one selectivity point's query: the -cols
// projection with a range predicate on the first column, or an equality
// probe of its median value for the point query.
func buildSelQuery(tbl *readopt.Table, cols int, sel float64) (readopt.Query, error) {
	all := tbl.Schema().Columns()
	if cols < 1 || cols > len(all) {
		return readopt.Query{}, fmt.Errorf("-cols must be in 1..%d", len(all))
	}
	q := readopt.Query{Select: all[:cols]}
	if sel < 0 {
		th, err := tbl.SelectivityThreshold(0.5)
		if err != nil {
			return readopt.Query{}, err
		}
		q.Where = []readopt.Cond{{Column: all[0], Op: "=", Value: th}}
		return q, nil
	}
	if sel < 1 {
		th, err := tbl.SelectivityThreshold(sel)
		if err != nil {
			return readopt.Query{}, err
		}
		q.Where = []readopt.Cond{{Column: all[0], Op: "<", Value: th}}
	} else {
		// The full scan keeps a (vacuous) predicate so every sweep point
		// runs the same plan shape; zone maps cannot prune it.
		q.Where = []readopt.Cond{{Column: all[0], Op: ">=", Value: int32(-1 << 31)}}
	}
	return q, nil
}

// sweepSelectivity measures one table across the -sel selectivity
// points at the given dop, best of repeat runs per point.
func sweepSelectivity(tbl *readopt.Table, cols int, sels []float64, dop, repeat int, scalar bool) ([]selReport, error) {
	var out []selReport
	for _, sel := range sels {
		q, err := buildSelQuery(tbl, cols, sel)
		if err != nil {
			return nil, err
		}
		best := selReport{Selectivity: sel, Micros: 1<<63 - 1}
		for i := 0; i < repeat; i++ {
			start := time.Now()
			rows, err := tbl.QueryExec(q, readopt.ExecOptions{Dop: dop, Scalar: scalar})
			if err != nil {
				return nil, err
			}
			var n int64
			for rows.Next() {
				n++
			}
			if err := rows.Err(); err != nil {
				rows.Close()
				return nil, err
			}
			elapsed := time.Since(start)
			stats := rows.Stats()
			rows.Close()
			if us := elapsed.Microseconds(); us < best.Micros {
				best.Micros = us
				best.Qualifying = n
				best.IOBytes = stats.IOBytes
				best.BytesSkipped = stats.BytesSkipped
				best.PagesTouched = stats.Pages
				best.PagesPruned = stats.PagesPruned
				best.PagesLateSkipped = stats.PagesLateSkipped
			}
		}
		name := fmt.Sprintf("%.4f", sel)
		if sel < 0 {
			name = "point"
		}
		fmt.Printf("sel %s: %v, %d qualifying, io %d bytes, skipped %d bytes (%d pruned, %d late-skipped, %d touched pages)\n",
			name, time.Duration(best.Micros)*time.Microsecond, best.Qualifying,
			best.IOBytes, best.BytesSkipped, best.PagesPruned, best.PagesLateSkipped, best.PagesTouched)
		out = append(out, best)
	}
	return out, nil
}

// guard enforces the checked-in regression floors over the measured
// sweeps and returns the verdicts, one line per check. The dop-4
// wall-clock floor applies in full only on hosts with at least 4 CPUs;
// smaller hosts (like 1-2 core CI runners) physically cannot speed up
// wall-clock with dop, so they get the small-host floor, which catches
// the parallel path regressing below serial. The kernel floor compares
// scalar to vectorized time at dop 1 and applies everywhere.
func guard(floors floorFile, reports []tableReport, cpus int) (lines []string, failed bool) {
	margin := 1 - floors.RegressionMargin
	check := func(name string, got, floor float64) {
		verdict := "ok"
		if got < floor*margin {
			verdict = "FAIL"
			failed = true
		}
		lines = append(lines, fmt.Sprintf("%-4s %s: %.2fx (floor %.2fx, margin %.0f%%)",
			verdict, name, got, floor, floors.RegressionMargin*100))
	}
	for _, rep := range reports {
		for _, r := range rep.Runs {
			if r.Dop != 4 || r.Speedup == 0 {
				continue
			}
			floor := floors.MinDop4Speedup
			if cpus < 4 {
				floor = floors.MinDop4SpeedupSmallHost
			}
			check(fmt.Sprintf("%s/%s dop-4 speedup", rep.Table, rep.Layout), r.Speedup, floor)
		}
		if rep.KernelSpeedup > 0 {
			check(fmt.Sprintf("%s/%s kernel speedup", rep.Table, rep.Layout), rep.KernelSpeedup, floors.MinKernelSpeedup)
		}
		// A -sel sweep (most selective point first, full scan last) is
		// guarded on the I/O saving at the selective end, plus the
		// structural requirement that bytes read never fall as
		// selectivity grows.
		if floors.MinSelectiveIOReduction > 0 && len(rep.Sel) >= 2 {
			first, last := rep.Sel[0], rep.Sel[len(rep.Sel)-1]
			if first.IOBytes > 0 {
				check(fmt.Sprintf("%s/%s selective I/O reduction", rep.Table, rep.Layout),
					float64(last.IOBytes)/float64(first.IOBytes), floors.MinSelectiveIOReduction)
			}
			for i := 1; i < len(rep.Sel); i++ {
				if rep.Sel[i].IOBytes < rep.Sel[i-1].IOBytes {
					failed = true
					lines = append(lines, fmt.Sprintf("FAIL %s/%s sel sweep: io bytes fell from %d to %d between points %d and %d",
						rep.Table, rep.Layout, rep.Sel[i-1].IOBytes, rep.Sel[i].IOBytes, i-1, i))
				}
			}
		}
	}
	return lines, failed
}

func main() {
	dirs := flag.String("dir", "", "table directory, or comma-separated list of directories (required)")
	cols := flag.Int("cols", 1, "number of leading columns to select")
	selectivity := flag.Float64("selectivity", 0.10, "predicate selectivity on the first column (1 = no predicate)")
	repeat := flag.Int("repeat", 1, "number of scan repetitions per dop (best run is reported)")
	dops := flag.String("dops", "1", "comma-separated degrees of parallelism to sweep")
	agg := flag.Bool("agg", false, "aggregate (count + sum of the first column) instead of projecting — exercises the partial-agg/merge path, where parallel workers exchange tiny states instead of result blocks")
	scalar := flag.Bool("scalar", false, "disable the vectorized operate-on-compressed kernels (value-at-a-time reference path)")
	sels := flag.String("sel", "", "sweep these selectivities instead of dops, most selective first (e.g. point,0.001,0.01,0.1,1); best on a table loaded with dbgen -cluster")
	jsonPath := flag.String("json", "", "write the sweep report as JSON to this path")
	guardPath := flag.String("guard", "", "enforce the regression floors in this JSON file; exit 1 on >margin regression")
	flag.Parse()

	if *dirs == "" {
		fmt.Fprintln(os.Stderr, "scanbench: -dir is required")
		flag.Usage()
		os.Exit(2)
	}
	sweep, err := parseDops(*dops)
	if err != nil {
		fatalf("%v", err)
	}
	var selSweep []float64
	if *sels != "" {
		if selSweep, err = parseSels(*sels); err != nil {
			fatalf("%v", err)
		}
	}

	var floors floorFile
	if *guardPath != "" {
		data, err := os.ReadFile(*guardPath)
		if err != nil {
			fatalf("%v", err)
		}
		if err := json.Unmarshal(data, &floors); err != nil {
			fatalf("guard file %s: %v", *guardPath, err)
		}
	}

	out := report{Cpus: runtime.NumCPU(), Gomaxprocs: runtime.GOMAXPROCS(0), Scalar: *scalar}
	fmt.Printf("host: %d cpus, gomaxprocs %d\n", out.Cpus, out.Gomaxprocs)
	for _, dir := range strings.Split(*dirs, ",") {
		dir = strings.TrimSpace(dir)
		tbl, err := readopt.OpenTable(dir)
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("table %s (%s layout, %d rows, %d data bytes)\n",
			tbl.Schema().Name(), tbl.Layout(), tbl.Rows(), tbl.DataBytes())

		var rep tableReport
		if selSweep != nil {
			fmt.Printf("query: select %d cols, selectivity sweep at dop %d\n", *cols, sweep[0])
			rep = tableReport{
				Table: tbl.Schema().Name(), Layout: tbl.Layout(),
				Rows: tbl.Rows(), DataBytes: tbl.DataBytes(),
			}
			rep.Sel, err = sweepSelectivity(tbl, *cols, selSweep, sweep[0], *repeat, *scalar)
			if err != nil {
				fatalf("%v", err)
			}
		} else {
			q, err := buildQuery(tbl, *cols, *selectivity, *agg)
			if err != nil {
				fatalf("%v", err)
			}
			if *agg {
				fmt.Printf("query: count + sum(%s), selectivity %.4f\n", tbl.Schema().Columns()[0], *selectivity)
			} else {
				fmt.Printf("query: select %d cols, selectivity %.4f\n", *cols, *selectivity)
			}
			rep, err = sweepTable(tbl, q, sweep, *repeat, *scalar, *jsonPath != "" || *guardPath != "")
			if err != nil {
				fatalf("%v", err)
			}
		}
		rep.Cols = *cols
		rep.Selectivity = *selectivity
		rep.Agg = *agg
		out.Tables = append(out.Tables, rep)
	}

	if *jsonPath != "" {
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			fatalf("%v", err)
		}
		if err := os.WriteFile(*jsonPath, append(data, '\n'), 0o644); err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("wrote %s\n", *jsonPath)
	}

	if *guardPath != "" {
		lines, failed := guard(floors, out.Tables, out.Cpus)
		for _, l := range lines {
			fmt.Println(l)
		}
		if failed {
			fatalf("bench regression guard failed")
		}
		fmt.Println("bench regression guard passed")
	}
}
