package readopt

import (
	"fmt"
	"os"
	"sync"

	"github.com/readoptdb/readopt/internal/aio"
	"github.com/readoptdb/readopt/internal/cpumodel"
	"github.com/readoptdb/readopt/internal/exec"
	"github.com/readoptdb/readopt/internal/page"
	"github.com/readoptdb/readopt/internal/scan"
	"github.com/readoptdb/readopt/internal/store"
)

// QueryParallel executes q with a partitioned scan: the table's rows are
// split into dop contiguous ranges, each scanned (with predicates and
// projection applied) by its own goroutine over its own page-aligned file
// section, and the qualifying tuples are concatenated in partition order
// before aggregation, ordering and limits run. This is the paper's
// "degree of parallelism" knob (Section 4, capacity planning): the paper
// keeps its engine single-threaded and notes the results trivially extend
// to multiple CPUs — this is that extension.
//
// Results are identical to Query's for any dop. Partition outputs are
// materialized, so a low-selectivity or aggregate-shaped query is the
// intended workload.
func (t *Table) QueryParallel(q Query, dop int) (*Rows, error) {
	if dop <= 1 {
		return t.Query(q)
	}
	if err := q.validate(); err != nil {
		return nil, err
	}
	scanCols, proj, err := t.scanPlan(q)
	if err != nil {
		return nil, err
	}
	preds, err := t.buildPreds(q.Where)
	if err != nil {
		return nil, err
	}
	total := t.t.Tuples
	bounds := t.partitionBounds(total, dop)

	outSchema, err := t.t.Schema.Project(proj)
	if err != nil {
		return nil, err
	}
	type part struct {
		tuples   []byte
		counters cpumodel.Counters
		err      error
	}
	parts := make([]part, len(bounds)-1)
	var wg sync.WaitGroup
	for i := 0; i < len(bounds)-1; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			op, err := t.scanRange(preds, proj, &parts[i].counters, bounds[i], bounds[i+1])
			if err != nil {
				parts[i].err = err
				return
			}
			tuples, err := exec.Collect(op)
			if err != nil {
				parts[i].err = err
				return
			}
			parts[i].tuples = tuples
		}()
	}
	wg.Wait()

	var counters cpumodel.Counters
	var merged []byte
	for i := range parts {
		if parts[i].err != nil {
			return nil, fmt.Errorf("readopt: partition %d: %w", i, parts[i].err)
		}
		counters.Add(parts[i].counters)
		merged = append(merged, parts[i].tuples...)
	}
	src, err := exec.NewSliceSource(outSchema, merged, 0)
	if err != nil {
		return nil, err
	}
	op, err := t.finishPlan(src, scanCols, q, &counters, nil)
	if err != nil {
		return nil, err
	}
	if err := op.Open(); err != nil {
		op.Close()
		return nil, err
	}
	return &Rows{op: op, sch: op.Schema(), counters: &counters}, nil
}

// partitionBounds splits [0, total) into ascending row boundaries, at
// most dop ranges, aligned so single-file layouts split at page
// boundaries.
func (t *Table) partitionBounds(total int64, dop int) []int64 {
	align := int64(1)
	if t.t.Layout == store.Row || t.t.Layout == store.PAX {
		align = int64(page.RowGeometry(t.t.Schema, t.t.PageSize).Capacity())
	}
	per := (total + int64(dop) - 1) / int64(dop)
	per = (per + align - 1) / align * align
	if per < align {
		per = align
	}
	bounds := []int64{0}
	for cur := per; cur < total; cur += per {
		bounds = append(bounds, cur)
	}
	return append(bounds, total)
}

// scanRange builds the physical scan for the row range [startRow,
// endRow).
func (t *Table) scanRange(preds []exec.Predicate, proj []int, counters *cpumodel.Counters, startRow, endRow int64) (exec.Operator, error) {
	if t.t.Layout == store.Row || t.t.Layout == store.PAX {
		// Page-aligned partition: slice the single data file by pages and
		// run the ordinary scanner over the section.
		capacity := int64(page.RowGeometry(t.t.Schema, t.t.PageSize).Capacity())
		startPage := startRow / capacity
		endPage := (endRow + capacity - 1) / capacity
		reader, err := openSection(t.t.DataPath(), startPage*int64(t.t.PageSize), (endPage-startPage)*int64(t.t.PageSize))
		if err != nil {
			return nil, err
		}
		cfg := scan.RowConfig{
			Schema:   t.t.Schema,
			PageSize: t.t.PageSize,
			Reader:   reader,
			Dicts:    t.t.Dicts,
			Preds:    preds,
			Proj:     proj,
			Counters: counters,
		}
		var op exec.Operator
		if t.t.Layout == store.PAX {
			op, err = scan.NewPAXScanner(cfg)
		} else {
			op, err = scan.NewRowScanner(cfg)
		}
		if err != nil {
			reader.Close()
			return nil, err
		}
		return op, nil
	}

	// Column layout: every needed column streams from the page containing
	// startRow; the scanner trims to the exact row range.
	need := map[int]bool{}
	for _, p := range preds {
		need[p.Attr] = true
	}
	for _, a := range proj {
		need[a] = true
	}
	readers := map[int]aio.Reader{}
	closeAll := func() {
		for _, r := range readers {
			r.Close()
		}
	}
	for a := range need {
		capacity := int64(page.ColGeometry(t.t.Schema.Attrs[a], t.t.PageSize).Capacity())
		startPage := startRow / capacity
		endPage := (endRow + capacity - 1) / capacity
		r, err := openSection(t.t.ColumnPath(a), startPage*int64(t.t.PageSize), (endPage-startPage)*int64(t.t.PageSize))
		if err != nil {
			closeAll()
			return nil, err
		}
		readers[a] = r
	}
	op, err := scan.NewColScanner(scan.ColConfig{
		Schema:   t.t.Schema,
		PageSize: t.t.PageSize,
		Readers:  readers,
		Dicts:    t.t.Dicts,
		Preds:    preds,
		Proj:     proj,
		Counters: counters,
		StartRow: startRow,
		EndRow:   endRow,
	})
	if err != nil {
		closeAll()
		return nil, err
	}
	return op, nil
}

// openSection opens a page-aligned byte range of a data file behind the
// prefetching reader.
func openSection(path string, off, length int64) (aio.Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	r, err := aio.NewOSReaderSection(f, ioUnit, ioDepth, off, length)
	if err != nil {
		f.Close()
		return nil, err
	}
	return &tableReader{OSReader: r, f: f}, nil
}
