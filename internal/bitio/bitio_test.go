package bitio

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWriteReadAtBasic(t *testing.T) {
	buf := make([]byte, 16)
	WriteAt(buf, 0, 3, 0b101)
	WriteAt(buf, 3, 5, 0b11010)
	WriteAt(buf, 8, 16, 0xBEEF)
	if got := ReadAt(buf, 0, 3); got != 0b101 {
		t.Errorf("ReadAt(0,3) = %b, want 101", got)
	}
	if got := ReadAt(buf, 3, 5); got != 0b11010 {
		t.Errorf("ReadAt(3,5) = %b, want 11010", got)
	}
	if got := ReadAt(buf, 8, 16); got != 0xBEEF {
		t.Errorf("ReadAt(8,16) = %x, want beef", got)
	}
}

func TestWriteAtMasksHighBits(t *testing.T) {
	buf := make([]byte, 8)
	WriteAt(buf, 0, 4, 0xFFFF) // only low 4 bits should land
	if got := ReadAt(buf, 0, 4); got != 0xF {
		t.Errorf("ReadAt = %x, want f", got)
	}
	if got := ReadAt(buf, 4, 4); got != 0 {
		t.Errorf("neighbouring bits disturbed: %x", got)
	}
}

func TestWriteAtPreservesNeighbours(t *testing.T) {
	buf := []byte{0xFF, 0xFF, 0xFF}
	WriteAt(buf, 5, 9, 0) // clear bits 5..13
	if got := ReadAt(buf, 0, 5); got != 0x1F {
		t.Errorf("low neighbours disturbed: %b", got)
	}
	if got := ReadAt(buf, 5, 9); got != 0 {
		t.Errorf("written bits = %b, want 0", got)
	}
	if got := ReadAt(buf, 14, 10); got != 0x3FF {
		t.Errorf("high neighbours disturbed: %b", got)
	}
}

func TestFullWidth64(t *testing.T) {
	buf := make([]byte, 10)
	const v uint64 = 0xDEADBEEFCAFEF00D
	WriteAt(buf, 3, 64, v)
	if got := ReadAt(buf, 3, 64); got != v {
		t.Errorf("64-bit unaligned round trip = %x, want %x", got, v)
	}
}

func TestBoundsPanics(t *testing.T) {
	buf := make([]byte, 2)
	cases := []func(){
		func() { WriteAt(buf, 0, 0, 0) },
		func() { WriteAt(buf, 0, 65, 0) },
		func() { WriteAt(buf, 10, 8, 0) },
		func() { WriteAt(buf, -1, 8, 0) },
		func() { ReadAt(buf, 0, 0) },
		func() { ReadAt(buf, 0, 65) },
		func() { ReadAt(buf, 12, 8) },
		func() { ReadAt(buf, -1, 8) },
		func() { CopyBits(buf, 0, buf, 0, -1) },
		func() { CopyBits(buf, 0, buf, 8, 16) },
		func() { CopyBits(buf, 8, buf, 0, 16) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

// Property: round trip at random offsets and widths.
func TestWriteReadAtProperty(t *testing.T) {
	buf := make([]byte, 64)
	f := func(off uint16, width uint8, v uint64) bool {
		w := int(width)%64 + 1
		o := int(off) % (len(buf)*8 - w)
		want := v
		if w < 64 {
			want &= (1 << w) - 1
		}
		WriteAt(buf, o, w, v)
		return ReadAt(buf, o, w) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: two adjacent writes never interfere.
func TestAdjacentWritesProperty(t *testing.T) {
	f := func(w1, w2 uint8, v1, v2 uint64) bool {
		a := int(w1)%64 + 1
		b := int(w2)%64 + 1
		buf := make([]byte, SizeBytes(a+b))
		WriteAt(buf, 0, a, v1)
		WriteAt(buf, a, b, v2)
		m1, m2 := v1, v2
		if a < 64 {
			m1 &= (1 << a) - 1
		}
		if b < 64 {
			m2 &= (1 << b) - 1
		}
		return ReadAt(buf, 0, a) == m1 && ReadAt(buf, a, b) == m2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestCopyBitsAligned(t *testing.T) {
	src := []byte{0xAB, 0xCD, 0xEF}
	dst := make([]byte, 3)
	CopyBits(dst, 0, src, 0, 24)
	if !bytes.Equal(dst, src) {
		t.Errorf("aligned CopyBits = %x, want %x", dst, src)
	}
	// Aligned with trailing partial byte.
	dst2 := make([]byte, 3)
	CopyBits(dst2, 0, src, 0, 20)
	if got := ReadAt(dst2, 0, 20); got != ReadAt(src, 0, 20) {
		t.Errorf("aligned partial CopyBits mismatch: %x vs %x", got, ReadAt(src, 0, 20))
	}
	if got := ReadAt(dst2, 20, 4); got != 0 {
		t.Errorf("bits beyond copy disturbed: %x", got)
	}
}

func TestCopyBitsUnalignedWide(t *testing.T) {
	// Codes wider than 64 bits at unaligned offsets (the L_COMMENT case).
	rng := rand.New(rand.NewSource(7))
	src := make([]byte, 64)
	rng.Read(src)
	dst := make([]byte, 80)
	const n = 224
	CopyBits(dst, 13, src, 5, n)
	for i := 0; i < n; i += 17 {
		w := 17
		if i+w > n {
			w = n - i
		}
		if ReadAt(dst, 13+i, w) != ReadAt(src, 5+i, w) {
			t.Fatalf("bit range [%d,%d) mismatch after wide unaligned copy", i, i+w)
		}
	}
}

func TestWriterReaderSequential(t *testing.T) {
	widths := []int{1, 3, 7, 8, 13, 32, 64, 5}
	vals := []uint64{1, 5, 100, 255, 4097, 0xCAFEBABE, 0x0123456789ABCDEF, 21}
	total := 0
	for _, w := range widths {
		total += w
	}
	buf := make([]byte, SizeBytes(total))
	w := NewWriter(buf)
	for i, width := range widths {
		w.WriteBits(vals[i], width)
	}
	if w.Offset() != total {
		t.Errorf("Writer.Offset() = %d, want %d", w.Offset(), total)
	}
	r := NewReader(buf)
	for i, width := range widths {
		want := vals[i]
		if width < 64 {
			want &= (1 << width) - 1
		}
		if got := r.ReadBits(width); got != want {
			t.Errorf("field %d (width %d) = %x, want %x", i, width, got, want)
		}
	}
	if r.Offset() != total {
		t.Errorf("Reader.Offset() = %d, want %d", r.Offset(), total)
	}
}

func TestWriterReaderBytesBits(t *testing.T) {
	payload := []byte("the quick brown fox jumps ov") // 28 bytes = 224 bits
	buf := make([]byte, SizeBytes(3+224+9))
	w := NewWriter(buf)
	w.WriteBits(0b101, 3)
	w.WriteBytesBits(payload, 224)
	w.WriteBits(0x1FF, 9)

	r := NewReader(buf)
	if got := r.ReadBits(3); got != 0b101 {
		t.Errorf("prefix = %b", got)
	}
	out := make([]byte, 28)
	r.ReadBytesBits(out, 224)
	if !bytes.Equal(out, payload) {
		t.Errorf("wide code round trip = %q, want %q", out, payload)
	}
	if got := r.ReadBits(9); got != 0x1FF {
		t.Errorf("suffix = %x", got)
	}
}

func TestReaderSkipAndNewReaderAt(t *testing.T) {
	buf := make([]byte, 8)
	WriteAt(buf, 10, 6, 0b110011)
	r := NewReader(buf)
	r.Skip(10)
	if got := r.ReadBits(6); got != 0b110011 {
		t.Errorf("after Skip, ReadBits = %b", got)
	}
	r2 := NewReaderAt(buf, 10)
	if got := r2.ReadBits(6); got != 0b110011 {
		t.Errorf("NewReaderAt ReadBits = %b", got)
	}
}

func TestSizeBytes(t *testing.T) {
	cases := map[int]int{0: 0, 1: 1, 7: 1, 8: 1, 9: 2, 92: 12, 224: 28, 408: 51}
	for bits, want := range cases {
		if got := SizeBytes(bits); got != want {
			t.Errorf("SizeBytes(%d) = %d, want %d", bits, got, want)
		}
	}
}

func TestWidthFor(t *testing.T) {
	cases := map[uint64]int{0: 1, 1: 1, 2: 2, 3: 2, 4: 3, 1000: 10, 1 << 40: 41}
	for v, want := range cases {
		if got := WidthFor(v); got != want {
			t.Errorf("WidthFor(%d) = %d, want %d", v, got, want)
		}
	}
}

// Property: WidthFor(v) bits always suffice to round-trip v.
func TestWidthForProperty(t *testing.T) {
	f := func(v uint64) bool {
		w := WidthFor(v)
		buf := make([]byte, 8)
		WriteAt(buf, 0, w, v)
		return ReadAt(buf, 0, w) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkWriteAt(b *testing.B) {
	buf := make([]byte, 4096)
	for i := 0; i < b.N; i++ {
		WriteAt(buf, (i*13)%(4096*8-14), 14, uint64(i))
	}
}

func BenchmarkReadAt(b *testing.B) {
	buf := make([]byte, 4096)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += ReadAt(buf, (i*13)%(4096*8-14), 14)
	}
	_ = sink
}
