package exec

import (
	"errors"
	"fmt"

	"github.com/readoptdb/readopt/internal/schema"
)

// errNextBeforeOpen is the protocol-violation error Next returns on an
// unopened operator. A sentinel: Next runs once per block on the hot
// path, and hotalloc forbids building the error there.
var errNextBeforeOpen = errors.New("exec: Next before Open")

// SliceSource is an Operator over an in-memory tuple slice. It backs
// tests, examples and the write-optimized store's query path; table data
// comes from the scanners in package scan.
type SliceSource struct {
	sch    *schema.Schema
	tuples []byte
	block  *Block
	pos    int
	opened bool
}

// NewSliceSource returns a source over tuples (concatenated decoded
// tuples of the given schema).
func NewSliceSource(sch *schema.Schema, tuples []byte, blockTuples int) (*SliceSource, error) {
	if len(tuples)%sch.Width() != 0 {
		return nil, fmt.Errorf("exec: tuple buffer of %d bytes is not a multiple of width %d", len(tuples), sch.Width())
	}
	if blockTuples <= 0 {
		blockTuples = DefaultBlockTuples
	}
	return &SliceSource{sch: sch, tuples: tuples, block: NewBlock(sch, blockTuples)}, nil
}

// Schema implements Operator.
func (s *SliceSource) Schema() *schema.Schema { return s.sch }

// Open implements Operator.
func (s *SliceSource) Open() error {
	s.pos = 0
	s.opened = true
	return nil
}

// Next implements Operator.
//
//readopt:hotpath
func (s *SliceSource) Next() (*Block, error) {
	if !s.opened {
		return nil, errNextBeforeOpen
	}
	width := s.sch.Width()
	total := len(s.tuples) / width
	if s.pos >= total {
		return nil, nil
	}
	s.block.Reset()
	for s.pos < total && !s.block.Full() {
		s.block.AppendTuple(s.tuples[s.pos*width : (s.pos+1)*width])
		s.pos++
	}
	return s.block, nil
}

// Close implements Operator.
func (s *SliceSource) Close() error {
	s.opened = false
	return nil
}
