//go:build readoptdebug

package bitio

import "testing"

// The readoptdebug build compiles assertWidth into a real range check;
// this test exists only under the tag and proves the assertion fires.
func TestAssertWidthFires(t *testing.T) {
	for _, w := range []int{-1, 65, 1 << 20} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("assertWidth(%d) did not panic under readoptdebug", w)
				}
			}()
			assertWidth(w)
		}()
	}
	// In-range widths stay silent.
	for _, w := range []int{0, 1, 32, 64} {
		assertWidth(w)
	}
}
