package wos

import (
	"context"
	"sync/atomic"

	"github.com/readoptdb/readopt/internal/cpumodel"
	"github.com/readoptdb/readopt/internal/exec"
	"github.com/readoptdb/readopt/internal/store"
)

// Snapshot pins one consistent view of the table: the generation and
// runs of a single epoch plus the memtable rows present when it was
// taken. Everything a query reads through a snapshot is immutable —
// versions are refcounted and the memtable is append-only between
// spills, so the captured slice never changes underneath the reader.
//
// Snapshot satisfies the plan layer's delta-source interface
// structurally: Table is the read-optimized base the plan scans, and
// OpenDelta supplies one operator per overlay source (runs oldest
// first, then the memtable) delivering full-width tuples.
type Snapshot struct {
	st       *Store
	v        *version
	mem      []byte
	memRows  int
	released atomic.Bool
}

// Snapshot pins the store's current version and memtable contents.
// Release it when the query finishes; files it references survive until
// then, whatever spills and compactions happen in between.
func (s *Store) Snapshot() *Snapshot {
	s.mu.Lock()
	v := s.cur
	v.retain()
	mem := s.mem[:s.memRows*s.sch.Width()]
	rows := s.memRows
	s.mu.Unlock()
	s.snapshots.Add(1)
	return &Snapshot{st: s, v: v, mem: mem, memRows: rows}
}

// Release unpins the snapshot. Idempotent.
func (sn *Snapshot) Release() {
	if !sn.released.CompareAndSwap(false, true) {
		return
	}
	sn.v.release()
	sn.st.snapshots.Add(-1)
}

// Epoch identifies the pinned version. Two result sets from the same
// epoch with the same memtable length are byte-identical.
func (sn *Snapshot) Epoch() int64 { return sn.v.epoch }

// Table returns the snapshot's read-optimized generation, the base the
// plan layer compiles its scan against.
func (sn *Snapshot) Table() *store.Table { return sn.v.gen.tbl }

// DeltaRows returns the number of rows the delta operators deliver on
// top of the base table.
func (sn *Snapshot) DeltaRows() int64 {
	return sn.v.deltaRows() + int64(sn.memRows)
}

// OpenDelta returns one unopened operator per delta source: each run of
// the pinned version oldest first, then the memtable capture. The
// caller owns Open/Close. counters may be nil.
func (sn *Snapshot) OpenDelta(ctx context.Context, counters *cpumodel.Counters) ([]exec.Operator, error) {
	ops := make([]exec.Operator, 0, len(sn.v.runs)+1)
	for _, r := range sn.v.runs {
		ops = append(ops, newRunScanner(ctx, r.dir, r.meta, r.sums, sn.st.sch, counters))
	}
	if sn.memRows > 0 {
		src, err := exec.NewSliceSource(sn.st.sch, sn.mem, 0)
		if err != nil {
			return nil, err
		}
		ops = append(ops, src)
	}
	return ops, nil
}
