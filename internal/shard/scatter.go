package shard

// The fan-out: one compiled shard request per partition, scattered
// concurrently, each partition running its own retry-onto-replica loop
// with hedging, all sharing one per-query retry budget.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/readoptdb/readopt"
	"github.com/readoptdb/readopt/internal/fault"
)

// retryBudget is the per-query cap on transient retries, shared across
// every partition of the fan-out so a flapping fleet fails fast instead
// of multiplying tail latency by the partition count.
type retryBudget struct{ left atomic.Int64 }

func newRetryBudget(n int) *retryBudget {
	b := &retryBudget{}
	b.left.Store(int64(n))
	return b
}

// take consumes one retry; false means the budget is spent.
func (b *retryBudget) take() bool { return b.left.Add(-1) >= 0 }

// tagShardError lifts a shard's wire error code back into the engine's
// failure taxonomy, deciding the coordinator's reaction: transient-class
// codes (including queue-full and draining — the replica is alive but
// not serving) retry onto another replica; cancelled and timeout do not
// retry, because replicas share the same deadline; corrupt fails the
// whole query. Anything else (bad request, missing table) passes
// through untagged — it would fail identically everywhere.
func tagShardError(err error) error {
	var se *readopt.ServerError
	if !errors.As(err, &se) {
		return err // transport errors arrive pre-tagged by the client
	}
	switch se.Code {
	case readopt.CodeTransient, readopt.CodeQueueFull, readopt.CodeDraining:
		return fault.Transient(err)
	case readopt.CodeCancelled, readopt.CodeTimeout:
		return fault.Cancelled(err)
	case readopt.CodeCorrupt:
		return &taggedCorrupt{cause: err}
	default:
		return err
	}
}

// taggedCorrupt marks a shard-reported corruption while preserving the
// ServerError for errors.As.
type taggedCorrupt struct{ cause error }

func (e *taggedCorrupt) Error() string   { return e.cause.Error() }
func (e *taggedCorrupt) Unwrap() []error { return []error{fault.ErrCorrupt, e.cause} }

// retryable reports whether a failed shard request is worth retrying on
// a replica.
func retryable(err error) bool { return fault.Classify(err) == fault.KindTransient }

// scatter sends req to every partition concurrently and returns the
// responses indexed by partition, plus each partition's error (nil on
// success).
func (c *Coordinator) scatter(ctx context.Context, req readopt.QueryRequest) ([]*readopt.QueryResponse, []error) {
	n := len(c.parts)
	resps := make([]*readopt.QueryResponse, n)
	errs := make([]error, n)
	budget := newRetryBudget(c.cfg.RetryBudget)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(pi int) {
			defer wg.Done()
			resps[pi], errs[pi] = c.fetchPartition(ctx, pi, req, budget)
		}(i)
	}
	wg.Wait()
	return resps, errs
}

// fetchPartition is one partition's failover loop: pick a live replica
// (rotating on retry), send, and on a transient failure back off —
// polling the query context — and try the next replica, until the
// shared budget or the replica set is exhausted.
func (c *Coordinator) fetchPartition(ctx context.Context, pi int, req readopt.QueryRequest, budget *retryBudget) (*readopt.QueryResponse, error) {
	part := c.parts[pi]
	var lastErr error
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, fault.Cancelled(err)
		}
		ep := part.pick(c.clk.Now(), attempt)
		if ep == nil {
			if lastErr != nil {
				return nil, fault.Transient(fmt.Errorf("shard: partition %d has no live replica (last error: %w)", pi, lastErr))
			}
			return nil, fault.Transient(fmt.Errorf("shard: partition %d has no live replica", pi))
		}
		resp, err := c.doHedged(ctx, part, ep, req)
		if err == nil {
			return resp, nil
		}
		lastErr = err
		if !retryable(err) {
			return nil, err
		}
		if !budget.take() {
			return nil, fault.Transient(fmt.Errorf("shard: partition %d: retry budget exhausted: %w", pi, err))
		}
		c.retries.Add(1)
		if serr := c.cfg.Backoff.Sleep(ctx, c.clk, attempt+1); serr != nil {
			return nil, serr
		}
	}
}

// doHedged sends req to ep, and — when the request outlives the hedge
// delay and another replica is live — races a second copy against it,
// first answer wins. Hedging is safe because queries are reads; the
// loser's request is cancelled and at worst counts a cancelled query on
// the shard. Both failing reports the primary's error to the retry
// loop, which treats the hedged pair as one attempt.
func (c *Coordinator) doHedged(ctx context.Context, part *partition, primary *endpoint, req readopt.QueryRequest) (*readopt.QueryResponse, error) {
	delay := c.hedgeDelay(primary)
	if delay <= 0 || len(part.endpoints) < 2 {
		return c.doOne(ctx, primary, req)
	}
	rctx, cancel := context.WithCancel(ctx)
	defer cancel()
	type result struct {
		resp *readopt.QueryResponse
		err  error
		ep   *endpoint
	}
	ch := make(chan result, 2)
	send := func(ep *endpoint) {
		go func() {
			r, e := c.doOne(rctx, ep, req)
			ch <- result{r, e, ep}
		}()
	}
	send(primary)
	timer := c.after(delay)
	outstanding := 1
	hedged := false
	var firstErr error
	for {
		select {
		case r := <-ch:
			outstanding--
			if r.err == nil {
				if hedged && r.ep != primary {
					c.hedgeWins.Add(1)
				}
				cancel() // the loser's request stops here
				return r.resp, nil
			}
			if r.ep == primary {
				firstErr = r.err
			} else if firstErr == nil {
				firstErr = r.err
			}
			if outstanding == 0 {
				return nil, firstErr
			}
		case <-timer:
			timer = nil
			if backup := part.next(c.clk.Now(), primary); backup != nil {
				c.hedges.Add(1)
				hedged = true
				outstanding++
				send(backup)
			}
		case <-ctx.Done():
			return nil, fault.Cancelled(ctx.Err())
		}
	}
}

// after returns a channel that closes after d of the coordinator's
// clock — the clock-disciplined stand-in for time.After. The goroutine
// lives at most d (small: a hedge delay), bounded and leak-free.
func (c *Coordinator) after(d time.Duration) <-chan struct{} {
	ch := make(chan struct{})
	go func() {
		c.clk.Sleep(d)
		close(ch)
	}()
	return ch
}

// hedgeDelay decides when a request to ep deserves a hedge: the fixed
// HedgeAfter when configured, otherwise the endpoint's observed
// HedgeQuantile latency floored at HedgeMin — and no hedge at all
// (zero) until the window has enough samples to mean something.
func (c *Coordinator) hedgeDelay(ep *endpoint) time.Duration {
	if c.cfg.HedgeAfter < 0 {
		return 0
	}
	if c.cfg.HedgeAfter > 0 {
		return c.cfg.HedgeAfter
	}
	q := ep.latencyQuantile(c.cfg.HedgeQuantile)
	if q <= 0 {
		return 0
	}
	if q < c.cfg.HedgeMin {
		q = c.cfg.HedgeMin
	}
	return q
}

// doOne is a single shard round trip with breaker and latency
// accounting. Only transient-class failures count against the breaker;
// a bad request or a shared deadline says nothing about the replica's
// health.
func (c *Coordinator) doOne(ctx context.Context, ep *endpoint, req readopt.QueryRequest) (*readopt.QueryResponse, error) {
	ep.requests.Add(1)
	start := c.clk.Now()
	resp, err := ep.client.Do(ctx, req)
	if err != nil {
		err = tagShardError(err)
		ep.errors.Add(1)
		if retryable(err) {
			ep.recordFailure(c.clk.Now())
		}
		return nil, err
	}
	ep.recordSuccess(c.clk.Now().Sub(start))
	return resp, nil
}
