package readopt

import (
	"bytes"
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"github.com/readoptdb/readopt/internal/fault"
)

// drainOrError drains rows at the tuple level, surfacing iteration and
// close errors — the chaos suite's "what did the query actually say"
// primitive.
func drainOrError(rows *Rows) ([]byte, error) {
	var out []byte
	for rows.Next() {
		out = append(out, rows.block.Tuple(rows.pos)...)
	}
	err := rows.Err()
	if cerr := rows.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, err
	}
	return out, nil
}

// typedFailure reports whether err carries the failure taxonomy — the
// contract that a fault never surfaces as an anonymous error.
func typedFailure(err error) bool {
	return errors.Is(err, ErrTransient) || errors.Is(err, ErrCorrupt) || errors.Is(err, ErrCancelled)
}

// awaitGoroutines waits for the goroutine count to drop back to the
// baseline (readers unwind asynchronously after Close) and fails with a
// full stack dump if it does not.
func awaitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	n := runtime.NumGoroutine()
	for n > base && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
		n = runtime.NumGoroutine()
	}
	if n > base {
		buf := make([]byte, 1<<20)
		t.Errorf("goroutines leaked: %d running, baseline %d\n%s", n, base, buf[:runtime.Stack(buf, true)])
	}
}

// TestChaosDifferential is the fault-tolerance acceptance test: under
// seeded fault injection (transient read errors with retry, persistent
// errors, torn reads, bit flips), every query at every layout and dop
// either returns tuples byte-identical to the fault-free baseline or
// fails with a typed error — never silently wrong data — and leaks no
// goroutines. The injection is deterministic per (seed, file, offset),
// so failures replay exactly.
func TestChaosDifferential(t *testing.T) {
	defer fault.DisableChaos()
	for _, layout := range []Layout{RowLayout, ColumnLayout, PAXLayout} {
		t.Run(string(layout), func(t *testing.T) {
			tbl := loadOrders(t, layout, 30_000)
			queries := differentialQueries(t, tbl)

			fault.DisableChaos()
			wants := make([][]byte, len(queries))
			for qi, q := range queries {
				rows, err := tbl.Query(q)
				if err != nil {
					t.Fatal(err)
				}
				wants[qi], err = drainOrError(rows)
				if err != nil {
					t.Fatal(err)
				}
			}
			base := runtime.NumGoroutine()

			succeeded, failed := 0, 0
			for _, seed := range []int64{1, 2, 3} {
				for _, dop := range []int{1, 2, 8} {
					fault.EnableChaos(fault.Config{
						Seed:        seed,
						ReadErrRate: 0.2,
						PersistRate: 0.4,
						TornRate:    0.03,
						FlipRate:    0.03,
					})
					for qi, q := range queries {
						rows, err := tbl.QueryExec(q, ExecOptions{Dop: dop})
						var got []byte
						if err == nil {
							got, err = drainOrError(rows)
						}
						if err != nil {
							failed++
							if !typedFailure(err) {
								t.Errorf("seed=%d dop=%d q%d: untyped failure: %v", seed, dop, qi, err)
							}
							continue
						}
						succeeded++
						if !bytes.Equal(got, wants[qi]) {
							t.Errorf("seed=%d dop=%d q%d: SILENT WRONG DATA: %d bytes, want %d",
								seed, dop, qi, len(got), len(wants[qi]))
						}
					}
					fault.DisableChaos()
					awaitGoroutines(t, base)
				}
			}
			// The rates are tuned so the suite exercises both paths; a
			// one-sided run means the injection config rotted.
			if succeeded == 0 || failed == 0 {
				t.Errorf("degenerate chaos run: %d succeeded, %d failed", succeeded, failed)
			}
		})
	}
}

// TestQueryCancellation: cancelling a query mid-iteration stops it with
// the typed cancellation error (also matching context.Canceled) at every
// dop, and the scan's prefetch goroutines unwind.
func TestQueryCancellation(t *testing.T) {
	tbl := loadOrders(t, ColumnLayout, 50_000)
	base := runtime.NumGoroutine()
	for _, dop := range []int{1, 2, 8} {
		ctx, cancel := context.WithCancel(context.Background())
		rows, err := tbl.QueryExec(Query{Select: []string{"O_ORDERKEY", "O_TOTALPRICE"}}, ExecOptions{Ctx: ctx, Dop: dop})
		if err != nil {
			cancel()
			t.Fatalf("dop=%d: %v", dop, err)
		}
		if !rows.Next() {
			t.Fatalf("dop=%d: no first row: %v", dop, rows.Err())
		}
		cancel()
		for rows.Next() {
		}
		err = rows.Err()
		if !errors.Is(err, ErrCancelled) || !errors.Is(err, context.Canceled) {
			t.Errorf("dop=%d: iteration ended with %v, want typed cancellation", dop, err)
		}
		if err := rows.Close(); err != nil {
			t.Errorf("dop=%d: close after cancel: %v", dop, err)
		}
		awaitGoroutines(t, base)
	}
}

// TestQueryPreCancelled: a context that is already dead fails the query
// at build time, typed, without starting any I/O.
func TestQueryPreCancelled(t *testing.T) {
	tbl := loadOrders(t, RowLayout, 2_000)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	base := runtime.NumGoroutine()
	_, err := tbl.QueryExec(Query{Select: []string{"O_ORDERKEY"}}, ExecOptions{Ctx: ctx, Dop: 4})
	if !errors.Is(err, ErrCancelled) {
		t.Errorf("QueryExec = %v, want typed cancellation", err)
	}
	awaitGoroutines(t, base)
}

// TestBatchCancellation: the context rides through the shared-scan batch
// path too.
func TestBatchCancellation(t *testing.T) {
	tbl := loadOrders(t, ColumnLayout, 20_000)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	base := runtime.NumGoroutine()
	_, err := tbl.QueryBatchExec([]Query{
		{Select: []string{"O_ORDERKEY"}},
		{Aggs: []Agg{{Func: "count"}}},
	}, ExecOptions{Ctx: ctx, Dop: 2})
	if !errors.Is(err, ErrCancelled) {
		t.Errorf("QueryBatchExec = %v, want typed cancellation", err)
	}
	awaitGoroutines(t, base)
}
