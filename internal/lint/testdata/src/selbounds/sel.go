// Package selbounds is the dirty selbounds fixture: raw selection
// vector elements escaping the bounds-checked consumers — indexing,
// slice bounds, and handing the vector to an unvetted helper — plus
// the late-materialization position tier: row positions derived from
// sel elements indexing payload without a bounds check, escaping to
// undeclared helpers, and a posconsumer that never checks at all.
package selbounds

// EvalPredicate mimics the compress kernel shape: it fills sel with
// matching row indices and returns the count. Its own body is exempt
// by name — it is the producer.
func EvalPredicate(codes []byte, sel []int32) int {
	n := 0
	for i := range codes {
		if codes[i] != 0 {
			sel[n] = int32(i)
			n++
		}
	}
	return n
}

type page struct {
	sel       []int32
	decoded   []byte
	positions []int64
}

func (p *page) fill(codes []byte) {
	p.sel = p.sel[:cap(p.sel)]
	n := EvalPredicate(codes, p.sel)
	p.sel = p.sel[:n]
}

// indexWithElement turns a raw sel element into a slice index with no
// bounds check between them.
func (p *page) indexWithElement(out []byte) {
	for i, s := range p.sel {
		out[i] = p.decoded[s] // want "selection-vector element used as a slice index"
	}
}

// sliceWithElement uses an element as a slice bound.
func (p *page) sliceWithElement(size int) []byte {
	s := p.sel[0]
	return p.decoded[int(s)*size:] // want "selection-vector element used as a slice bound"
}

// passToUnchecked hands the whole vector to a helper that neither has
// a consumer name nor the directive.
func (p *page) passToUnchecked() {
	shuffle(p.sel) // want "selection vector passed to shuffle"
}

func shuffle(v []int32) {}

// buildPositions is the late-materialization shape: sel elements
// become global row positions via arithmetic, accumulated in an
// []int64 field. The appends themselves are fine — it is what happens
// to the positions afterwards that the analyzer polices.
func (p *page) buildPositions(rowBase int64) {
	p.positions = p.positions[:0]
	for _, s := range p.sel {
		p.positions = append(p.positions, rowBase+int64(s))
	}
}

// fetchWithPosition indexes a payload page with a raw row position —
// positions cross pages, so this reads the wrong tuple the moment the
// cursor and the vector disagree.
func (p *page) fetchWithPosition(out []byte) {
	for i, pos := range p.positions {
		out[i] = p.decoded[pos] // want "position-vector element used as a slice index"
	}
}

// sliceWithPosition uses a position as a slice bound.
func (p *page) sliceWithPosition(size int) []byte {
	pos := p.positions[0]
	return p.decoded[int(pos)*size:] // want "position-vector element used as a slice bound"
}

// launderThroughArithmetic derives a position from a sel element by
// arithmetic — which strips the sel-element taint — and indexes with
// it anyway.
func (p *page) launderThroughArithmetic(rowBase int64, out []byte) {
	s := p.sel[0]
	pos := rowBase + int64(s)
	out[pos] = 1 // want "position-vector element used as a slice index"
}

// handOffVector passes the whole position vector to a helper with no
// directive.
func (p *page) handOffVector() {
	walk(p.positions) // want "position vector passed to walk"
}

// handOffElement passes a single position to an undeclared helper.
func (p *page) handOffElement() byte {
	var b byte
	for _, pos := range p.positions {
		b = fetchRaw(p.decoded, pos) // want "position passed to fetchRaw"
	}
	return b
}

func walk(v []int64) {}

func fetchRaw(decoded []byte, pos int64) byte { return 0 }

// fetchUnchecked claims the posconsumer directive but never compares
// its position parameter against anything — the directive is a lie.
//
//readopt:posconsumer
func fetchUnchecked(decoded []byte, pos int64) byte { // want "never bounds-checks its int64 position parameter"
	return decoded[pos]
}
