package exec

import (
	"fmt"
	"sort"

	"github.com/readoptdb/readopt/internal/cpumodel"
	"github.com/readoptdb/readopt/internal/schema"
)

// AggFunc enumerates the supported aggregate functions.
type AggFunc uint8

const (
	Count AggFunc = iota
	Sum
	Min
	Max
	Avg
)

// String returns the SQL spelling of the function.
func (f AggFunc) String() string {
	switch f {
	case Count:
		return "COUNT"
	case Sum:
		return "SUM"
	case Min:
		return "MIN"
	case Max:
		return "MAX"
	case Avg:
		return "AVG"
	default:
		return fmt.Sprintf("AggFunc(%d)", uint8(f))
	}
}

// AggSpec is one aggregate in a query's select list. Attr is ignored for
// Count. Aggregates apply to integer attributes; results are int32 (Avg
// truncates), matching the engine's integer-only arithmetic.
type AggSpec struct {
	Func AggFunc
	Attr int
}

// aggState accumulates one group's aggregates using 64-bit intermediates.
type aggState struct {
	count int64
	sums  []int64
	mins  []int32
	maxs  []int32
	key   []byte
}

// aggOutputSchema builds the result schema: group-by attributes followed
// by one int32 per aggregate.
func aggOutputSchema(in *schema.Schema, groupBy []int, aggs []AggSpec) (*schema.Schema, error) {
	var attrs []schema.Attribute
	for _, g := range groupBy {
		if g < 0 || g >= in.NumAttrs() {
			return nil, fmt.Errorf("exec: group-by attribute %d out of range for %s", g, in.Name)
		}
		a := in.Attrs[g]
		attrs = append(attrs, schema.Attribute{Name: a.Name, Type: a.Type})
	}
	for _, s := range aggs {
		name := s.Func.String() + "(*)"
		if s.Func != Count {
			if s.Attr < 0 || s.Attr >= in.NumAttrs() {
				return nil, fmt.Errorf("exec: aggregate attribute %d out of range for %s", s.Attr, in.Name)
			}
			if in.Attrs[s.Attr].Type.Kind != schema.Int32 {
				return nil, fmt.Errorf("exec: %s over non-integer attribute %s", s.Func, in.Attrs[s.Attr].Name)
			}
			name = fmt.Sprintf("%s(%s)", s.Func, in.Attrs[s.Attr].Name)
		}
		attrs = append(attrs, schema.Attribute{Name: name, Type: schema.IntType})
	}
	if len(attrs) == 0 {
		return nil, fmt.Errorf("exec: aggregation with neither group-by nor aggregates")
	}
	return schema.New(in.Name+"/agg", attrs)
}

// AggOutputSchema returns the result schema an aggregation over in
// produces: the group-by attributes followed by one int32 per aggregate,
// named like "SUM(O_TOTALPRICE)" or "COUNT(*)". The planner resolves
// ORDER BY columns against it before building operators.
func AggOutputSchema(in *schema.Schema, groupBy []int, aggs []AggSpec) (*schema.Schema, error) {
	return aggOutputSchema(in, groupBy, aggs)
}

// groupKeyWidth returns the concatenated width of the group-by attributes.
func groupKeyWidth(in *schema.Schema, groupBy []int) int {
	w := 0
	for _, g := range groupBy {
		w += in.Attrs[g].Type.Size
	}
	return w
}

func newAggState(keyW int, aggs []AggSpec) *aggState {
	st := &aggState{key: make([]byte, keyW), sums: make([]int64, len(aggs)), mins: make([]int32, len(aggs)), maxs: make([]int32, len(aggs))}
	for i := range st.mins {
		st.mins[i] = 1<<31 - 1
		st.maxs[i] = -1 << 31
	}
	return st
}

func (st *aggState) update(in *schema.Schema, aggs []AggSpec, tuple []byte) {
	st.count++
	for i, s := range aggs {
		if s.Func == Count {
			continue
		}
		v := in.Int32At(tuple, s.Attr)
		st.sums[i] += int64(v)
		if v < st.mins[i] {
			st.mins[i] = v
		}
		if v > st.maxs[i] {
			st.maxs[i] = v
		}
	}
}

// emit writes the group's result tuple into dst using the output schema.
func (st *aggState) emit(out *schema.Schema, nGroup int, aggs []AggSpec, dst []byte) {
	off := 0
	for g := 0; g < nGroup; g++ {
		size := out.Attrs[g].Type.Size
		copy(dst[out.Offset(g):out.Offset(g)+size], st.key[off:off+size])
		off += size
	}
	for i, s := range aggs {
		var v int32
		switch s.Func {
		case Count:
			v = int32(st.count)
		case Sum:
			v = int32(st.sums[i])
		case Min:
			v = st.mins[i]
		case Max:
			v = st.maxs[i]
		case Avg:
			if st.count > 0 {
				v = int32(st.sums[i] / st.count)
			}
		}
		out.PutInt32At(dst, nGroup+i, v)
	}
}

// extractKey concatenates the group-by attribute bytes of a tuple.
func extractKey(in *schema.Schema, groupBy []int, tuple, dst []byte) []byte {
	dst = dst[:0]
	for _, g := range groupBy {
		off := in.Offset(g)
		dst = append(dst, tuple[off:off+in.Attrs[g].Type.Size]...)
	}
	return dst
}

// HashAggregate groups its input with a hash table — the engine's
// hash-based aggregation. Results are emitted in deterministic (sorted
// key) order so query output is reproducible.
type HashAggregate struct {
	child    Operator
	groupBy  []int
	aggs     []AggSpec
	out      *schema.Schema
	counters *cpumodel.Counters
	costs    cpumodel.Costs

	groups  map[string]*aggState
	ordered []*aggState
	emitPos int
	block   *Block
}

// NewHashAggregate builds a hash aggregation over child. counters may be
// nil.
func NewHashAggregate(child Operator, groupBy []int, aggs []AggSpec, counters *cpumodel.Counters) (*HashAggregate, error) {
	out, err := aggOutputSchema(child.Schema(), groupBy, aggs)
	if err != nil {
		return nil, err
	}
	return &HashAggregate{
		child: child, groupBy: groupBy, aggs: aggs, out: out,
		counters: counters, costs: cpumodel.DefaultCosts(),
		block: NewBlock(out, DefaultBlockTuples),
	}, nil
}

// Schema implements Operator.
func (h *HashAggregate) Schema() *schema.Schema { return h.out }

// Open drains the child and builds the groups.
func (h *HashAggregate) Open() error {
	if err := h.child.Open(); err != nil {
		return err
	}
	in := h.child.Schema()
	keyW := groupKeyWidth(in, h.groupBy)
	h.groups = make(map[string]*aggState)
	keyBuf := make([]byte, 0, keyW)
	for {
		b, err := h.child.Next()
		if err != nil {
			return err
		}
		if b == nil {
			break
		}
		for i := 0; i < b.Len(); i++ {
			t := b.Tuple(i)
			keyBuf = extractKey(in, h.groupBy, t, keyBuf)
			h.counters.AddInstr(h.costs.GroupProbe + h.costs.AggUpdate)
			st, ok := h.groups[string(keyBuf)]
			if !ok {
				st = newAggState(keyW, h.aggs)
				copy(st.key, keyBuf)
				h.groups[string(keyBuf)] = st
			}
			st.update(in, h.aggs, t)
		}
	}
	h.ordered = h.ordered[:0]
	keys := make([]string, 0, len(h.groups))
	for k := range h.groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		h.ordered = append(h.ordered, h.groups[k])
	}
	h.emitPos = 0
	return nil
}

// Next implements Operator.
func (h *HashAggregate) Next() (*Block, error) {
	if h.emitPos >= len(h.ordered) {
		return nil, nil
	}
	h.block.Reset()
	for h.emitPos < len(h.ordered) && !h.block.Full() {
		h.ordered[h.emitPos].emit(h.out, len(h.groupBy), h.aggs, h.block.Alloc())
		h.emitPos++
	}
	h.counters.AddInstr(h.costs.BlockOverhead)
	return h.block, nil
}

// Close implements Operator.
func (h *HashAggregate) Close() error {
	h.groups = nil
	h.ordered = nil
	return h.child.Close()
}

// SortAggregate is the engine's sort-based aggregation: it requires input
// already sorted (clustered) on the group-by attributes and folds each
// consecutive run, streaming results with constant memory.
type SortAggregate struct {
	child    Operator
	groupBy  []int
	aggs     []AggSpec
	out      *schema.Schema
	counters *cpumodel.Counters
	costs    cpumodel.Costs

	cur     *aggState
	curSet  bool
	keyBuf  []byte
	block   *Block
	inBlock *Block
	inPos   int
	done    bool
}

// NewSortAggregate builds a sort-based aggregation over child, whose
// output must be clustered on the group-by attributes. counters may be
// nil.
func NewSortAggregate(child Operator, groupBy []int, aggs []AggSpec, counters *cpumodel.Counters) (*SortAggregate, error) {
	out, err := aggOutputSchema(child.Schema(), groupBy, aggs)
	if err != nil {
		return nil, err
	}
	keyW := groupKeyWidth(child.Schema(), groupBy)
	return &SortAggregate{
		child: child, groupBy: groupBy, aggs: aggs, out: out,
		counters: counters, costs: cpumodel.DefaultCosts(),
		cur:    newAggState(keyW, aggs),
		keyBuf: make([]byte, 0, keyW),
		block:  NewBlock(out, DefaultBlockTuples),
	}, nil
}

// Schema implements Operator.
func (s *SortAggregate) Schema() *schema.Schema { return s.out }

// Open implements Operator.
func (s *SortAggregate) Open() error {
	s.curSet = false
	s.done = false
	s.inBlock = nil
	s.inPos = 0
	return s.child.Open()
}

// Next implements Operator. It holds a cursor into the child's current
// block across calls, so a group boundary that lands on a full output
// block simply resumes with the same input tuple on the next call.
func (s *SortAggregate) Next() (*Block, error) {
	if s.done {
		return nil, nil
	}
	in := s.child.Schema()
	s.block.Reset()
	for !s.block.Full() {
		if s.inBlock == nil || s.inPos >= s.inBlock.Len() {
			b, err := s.child.Next()
			if err != nil {
				return nil, err
			}
			if b == nil {
				if s.curSet {
					s.cur.emit(s.out, len(s.groupBy), s.aggs, s.block.Alloc())
					s.curSet = false
				}
				s.done = true
				break
			}
			s.inBlock, s.inPos = b, 0
		}
		t := s.inBlock.Tuple(s.inPos)
		s.keyBuf = extractKey(in, s.groupBy, t, s.keyBuf)
		if s.curSet && string(s.keyBuf) != string(s.cur.key) {
			// Group boundary: emit the finished group, then reprocess the
			// same tuple as the start of the next group.
			s.cur.emit(s.out, len(s.groupBy), s.aggs, s.block.Alloc())
			s.resetCur()
			continue
		}
		if !s.curSet {
			copy(s.cur.key, s.keyBuf)
			s.curSet = true
		}
		s.counters.AddInstr(s.costs.Compare + s.costs.AggUpdate)
		s.cur.update(in, s.aggs, t)
		s.inPos++
	}
	s.counters.AddInstr(s.costs.BlockOverhead)
	if s.block.Len() == 0 {
		return nil, nil
	}
	return s.block, nil
}

// resetCur clears the accumulator for the next group.
func (s *SortAggregate) resetCur() {
	s.cur = newAggState(len(s.cur.key), s.aggs)
	s.curSet = false
}

// Close implements Operator.
func (s *SortAggregate) Close() error { return s.child.Close() }
