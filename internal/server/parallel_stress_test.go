package server_test

import (
	"context"
	"fmt"
	"io"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"github.com/readoptdb/readopt"
	"github.com/readoptdb/readopt/internal/server"
)

// TestServerParallelDopStress drives the scheduler's dop routing under
// concurrency: goroutines issue queries asking for a parallel scan
// against one table while scrapers hammer /metrics, so slot
// accounting, worker-counter merging and stats aggregation all race.
// With a single table, the dispatcher holds one of the four worker
// slots, so extra parallel slots are always available and at least one
// dispatch must run at dop > 1.
func TestServerParallelDopStress(t *testing.T) {
	tbl := loadOrders(t, 8_000)
	s := server.New(server.Config{
		Workers:    4,
		MaxDop:     3,
		QueueDepth: 256,
	})
	if err := s.AddTable("orders", tbl); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := readopt.NewClient(ts.URL, ts.Client())

	th, err := tbl.SelectivityThreshold(0.10)
	if err != nil {
		t.Fatal(err)
	}
	queries := []readopt.Query{
		{Select: []string{"O_ORDERKEY", "O_TOTALPRICE"},
			Where: []readopt.Cond{{Column: "O_ORDERDATE", Op: "<", Value: th}}},
		{GroupBy: []string{"O_ORDERSTATUS"},
			Aggs: []readopt.Agg{{Func: "count"}, {Func: "avg", Column: "O_TOTALPRICE"}}},
		{Aggs: []readopt.Agg{{Func: "count"}}},
		{Select: []string{"O_TOTALPRICE", "O_ORDERKEY"},
			OrderBy: []readopt.Order{{Column: "O_TOTALPRICE", Desc: true}},
			Limit:   7},
	}

	const (
		queryWorkers = 6
		iterations   = 5
		scrapers     = 2
	)
	errCh := make(chan error, queryWorkers*iterations)
	var queriers sync.WaitGroup
	for w := 0; w < queryWorkers; w++ {
		w := w
		queriers.Add(1)
		go func() {
			defer queriers.Done()
			for i := 0; i < iterations; i++ {
				req := readopt.QueryRequest{
					Table: "orders",
					Query: queries[(w+i)%len(queries)],
					Dop:   2 + (w+i)%2, // request dop 2 or 3; the server clamps to slots
					Trace: (w+i)%3 == 0,
				}
				resp, err := client.Do(context.Background(), req)
				if err != nil {
					errCh <- fmt.Errorf("worker %d query %d: %w", w, i, err)
					return
				}
				// A co-batched query runs at the largest dop any batch member
				// asked for, so the bound is the server ceiling, not req.Dop.
				if resp.Dop < 1 || resp.Dop > 3 {
					errCh <- fmt.Errorf("worker %d query %d: effective dop %d outside [1, MaxDop]", w, i, resp.Dop)
					return
				}
				if req.Trace && resp.Trace == nil {
					errCh <- fmt.Errorf("worker %d query %d: traced request got no trace", w, i)
					return
				}
			}
		}()
	}

	done := make(chan struct{})
	var scrapeWG sync.WaitGroup
	for g := 0; g < scrapers; g++ {
		scrapeWG.Add(1)
		go func() {
			defer scrapeWG.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				resp, err := ts.Client().Get(ts.URL + "/metrics")
				if err != nil {
					errCh <- fmt.Errorf("metrics scrape: %w", err)
					return
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					errCh <- fmt.Errorf("metrics body: %w", err)
					return
				}
				if !strings.Contains(string(body), "readopt_parallel_runs_total") {
					errCh <- fmt.Errorf("metrics scrape missing parallel counter:\n%s", body)
					return
				}
			}
		}()
	}

	queriers.Wait()
	close(done)
	scrapeWG.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}

	st := s.Stats()
	if want := int64(queryWorkers * iterations); st.Completed != want {
		t.Errorf("completed %d of %d queries", st.Completed, want)
	}
	if st.Failed != 0 || st.Rejected != 0 {
		t.Errorf("stress run shed or failed queries: %+v", st)
	}
	// One table means one dispatcher: it holds a single worker slot, so
	// planDop always finds a free extra slot and every dispatch of this
	// run is eligible to go parallel.
	if st.ParallelRuns < 1 {
		t.Errorf("no dispatch ran parallel: %+v", st)
	}
}

// TestServerDopSerialEquivalence: the same query answered at dop 1 and
// at dop 4 returns identical rows through the wire format, and the
// response reports the effective dop.
func TestServerDopSerialEquivalence(t *testing.T) {
	tbl := loadOrders(t, 6_000)
	s := server.New(server.Config{Workers: 4})
	if err := s.AddTable("orders", tbl); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := readopt.NewClient(ts.URL, ts.Client())

	q := readopt.Query{
		GroupBy: []string{"O_ORDERSTATUS"},
		Aggs:    []readopt.Agg{{Func: "count"}, {Func: "sum", Column: "O_TOTALPRICE"}},
		OrderBy: []readopt.Order{{Column: "O_ORDERSTATUS"}},
	}
	serial, err := client.Do(context.Background(), readopt.QueryRequest{Table: "orders", Query: q})
	if err != nil {
		t.Fatal(err)
	}
	if serial.Dop > 1 {
		t.Errorf("serial request reports dop %d", serial.Dop)
	}
	parallel, err := client.Do(context.Background(), readopt.QueryRequest{Table: "orders", Query: q, Dop: 4})
	if err != nil {
		t.Fatal(err)
	}
	if parallel.Dop <= 1 {
		t.Errorf("parallel request ran at dop %d", parallel.Dop)
	}
	if fmt.Sprint(parallel.Rows) != fmt.Sprint(serial.Rows) {
		t.Errorf("dop changed the result:\nserial   %v\nparallel %v", serial.Rows, parallel.Rows)
	}
}
