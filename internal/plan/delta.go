package plan

import (
	"fmt"
	"math"

	"github.com/readoptdb/readopt/internal/cpumodel"
	"github.com/readoptdb/readopt/internal/exec"
	"github.com/readoptdb/readopt/internal/schema"
)

// The write path's overlay joins the plan below its aggregation. Each
// delta source (a run file scanner or the memtable capture) delivers
// full-width tuples, so each gets its own filter → project chain to
// reach the scan's output schema. A serial plan concatenates the chains
// after the base scan; a parallel plan appends them as extra exchange
// producers after the scan partitions — either way the child order is
// fixed, so results stay byte-identical at any dop.

// deltaChains builds one filter → project chain per overlay source.
// Sources are unopened; closeErr closes any base operator the caller
// already holds. ctr is the pool every chain charges; callers needing
// per-chain pools rebind afterwards via chainCounters.
func (p *Plan) deltaChains(o ExecOpts, ctr *cpumodel.Counters) ([]exec.Operator, error) {
	if o.Delta == nil {
		return nil, nil
	}
	srcs, err := p.openDeltaSources(o, ctr)
	if err != nil {
		return nil, err
	}
	chains := make([]exec.Operator, 0, len(srcs))
	for i, src := range srcs {
		op := src
		if len(p.spec.Preds) > 0 {
			f, err := exec.NewFilter(op, p.spec.Preds, ctr)
			if err != nil {
				return nil, fmt.Errorf("plan: delta source %d: %w", i, err)
			}
			op = f
		}
		pr, err := exec.NewProject(op, p.spec.Proj, ctr)
		if err != nil {
			return nil, fmt.Errorf("plan: delta source %d: %w", i, err)
		}
		chains = append(chains, pr)
	}
	return chains, nil
}

// openDeltaSources opens the overlay, routing through the key-range
// path when the opener supports it and the query's predicates constrain
// the overlay's sort key. Runs and run pages outside the key interval
// are skipped at open time and charged to ctr as pruned.
func (p *Plan) openDeltaSources(o ExecOpts, ctr *cpumodel.Counters) ([]exec.Operator, error) {
	if kd, ok := o.Delta.(KeyRangeDelta); ok {
		if lo, hi, ok := keyBounds(p.spec.Preds, kd.KeyAttr(), p.tbl.Schema); ok {
			return kd.OpenDeltaRange(o.Ctx, ctr, lo, hi)
		}
	}
	return o.Delta.OpenDelta(o.Ctx, ctr)
}

// keyBounds derives the closed interval [lo, hi] the conjunctive
// predicates imply for the int32 attribute key. ok is false when the
// predicates leave the key unconstrained (or key is not an int32
// attribute), in which case the caller opens the overlay unpruned. A
// contradictory predicate set yields lo > hi with ok true: every
// key-sorted source is skipped, and the plan's exact filters empty
// whatever remains. Ne constrains nothing — a sorted run can hold
// values on both sides of the excluded point.
func keyBounds(preds []exec.Predicate, key int, sch *schema.Schema) (lo, hi int32, ok bool) {
	if key < 0 || key >= sch.NumAttrs() || sch.Attrs[key].Type.Kind != schema.Int32 {
		return 0, 0, false
	}
	lo, hi = math.MinInt32, math.MaxInt32
	for _, pr := range preds {
		if pr.Attr != key {
			continue
		}
		switch pr.Op {
		case exec.Eq:
			if pr.Int > lo {
				lo = pr.Int
			}
			if pr.Int < hi {
				hi = pr.Int
			}
		case exec.Le:
			if pr.Int < hi {
				hi = pr.Int
			}
		case exec.Lt:
			if pr.Int == math.MinInt32 {
				return 1, 0, true // v < MinInt32: impossible
			}
			if pr.Int-1 < hi {
				hi = pr.Int - 1
			}
		case exec.Ge:
			if pr.Int > lo {
				lo = pr.Int
			}
		case exec.Gt:
			if pr.Int == math.MaxInt32 {
				return 1, 0, true // v > MaxInt32: impossible
			}
			if pr.Int+1 > lo {
				lo = pr.Int + 1
			}
		default:
			continue
		}
		ok = true
	}
	return lo, hi, ok
}

// chainCounters rebinds every counter-charging operator of one chain to
// a fresh pool. The chain's operators all implement CounterSink except
// the memtable's SliceSource, which charges nothing.
func chainCounters(op exec.Operator, ctr *cpumodel.Counters) {
	for cur := op; cur != nil; {
		if cs, ok := cur.(CounterSink); ok {
			cs.SetCounters(ctr)
		}
		child, ok := cur.(interface{ Child() exec.Operator })
		if !ok {
			return
		}
		cur = child.Child()
	}
}

// deltaDetail renders the delta stage's detail line.
func deltaDetail(o ExecOpts) string {
	return fmt.Sprintf("%d overlay rows", o.Delta.DeltaRows())
}
