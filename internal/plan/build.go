package plan

import (
	"fmt"

	"github.com/readoptdb/readopt/internal/cpumodel"
	"github.com/readoptdb/readopt/internal/exec"
	"github.com/readoptdb/readopt/internal/schema"
	"github.com/readoptdb/readopt/internal/trace"
)

// exchangeDepth is the per-worker queue depth of the parallel plan's
// exchange: enough to keep workers streaming ahead of the consumer,
// small enough that a plan's buffered memory stays bounded at
// dop × (depth+1) blocks.
const exchangeDepth = 4

// Operator instantiates the compiled plan as an operator tree. Serial
// plans build exactly the tree the engine has always run; parallel
// plans build one worker chain per partition under an exchange.
func (p *Plan) Operator(o ExecOpts) (exec.Operator, error) {
	name := o.ScanStage
	if name == "" {
		name = "scan"
	}
	var op exec.Operator
	var err error
	if n := p.Dop(); n > 1 {
		op, err = p.parallelOperator(o, name, n)
	} else {
		op, err = p.serialOperator(o, name)
	}
	if err != nil {
		return nil, err
	}
	// The root checks the context between blocks, so even a plan whose
	// scan is buffered ahead stops promptly on cancellation.
	return exec.WithCancel(op, o.Ctx), nil
}

// scanDetail renders the scan stage's detail line.
func (p *Plan) scanDetail(o ExecOpts) string {
	if o.ScanDetail != "" {
		return o.ScanDetail
	}
	return fmt.Sprintf("%s layout, %d columns, %d predicates", p.tbl.Layout, len(p.spec.Proj), len(p.spec.Preds))
}

// stage hands an operator its counters pool and decorator: the
// query-wide pool and the identity when untraced, a per-stage pool and
// the timing wrapper when traced.
func stage(o ExecOpts, name, detail string) (*cpumodel.Counters, func(exec.Operator) exec.Operator) {
	if o.Trace == nil {
		return o.Counters, func(op exec.Operator) exec.Operator { return op }
	}
	st := o.Trace.NewStage(name, detail)
	return &st.Counters, func(op exec.Operator) exec.Operator { return trace.Wrap(op, st) }
}

// serialOperator builds the single-chain plan.
func (p *Plan) serialOperator(o ExecOpts, stageName string) (exec.Operator, error) {
	ctr := o.Counters
	var scanStage *trace.Stage
	if o.Trace != nil {
		scanStage = o.Trace.NewStage(stageName, p.scanDetail(o))
		scanStage.RowsIn = p.tbl.Tuples
		ctr = &scanStage.Counters
	}
	op, err := p.scanOperator(o.Ctx, ctr, o.Trace)
	if err != nil {
		return nil, err
	}
	if o.Trace != nil {
		op = trace.Wrap(op, scanStage)
	}
	if o.Delta != nil {
		dctr := o.Counters
		var deltaStage *trace.Stage
		if o.Trace != nil {
			deltaStage = o.Trace.NewStage("delta", deltaDetail(o))
			deltaStage.RowsIn = o.Delta.DeltaRows()
			dctr = &deltaStage.Counters
		}
		chains, err := p.deltaChains(o, dctr)
		if err != nil {
			op.Close()
			return nil, err
		}
		if len(chains) > 0 {
			overlay := chains[0]
			if len(chains) > 1 {
				if overlay, err = exec.NewConcat(chains); err != nil {
					op.Close()
					return nil, err
				}
			}
			if o.Trace != nil {
				overlay = trace.Wrap(overlay, deltaStage)
			}
			cc, err := exec.NewConcat([]exec.Operator{op, overlay})
			if err != nil {
				op.Close()
				return nil, err
			}
			op = cc
		}
	}
	if len(p.spec.Aggs) > 0 {
		if p.spec.Partial {
			// A partial plan stops at the accumulator states: the final
			// merge runs elsewhere (the shard coordinator's AggMerge).
			ctr, wrap := stage(o, "partial-agg", fmt.Sprintf("%d group-by keys, %d aggregates", len(p.spec.GroupBy), len(p.spec.Aggs)))
			pa, err := exec.NewPartialAgg(op, p.spec.GroupBy, p.spec.Aggs, ctr)
			if err != nil {
				op.Close()
				return nil, err
			}
			return wrap(pa), nil
		}
		ctr, wrap := stage(o, "hash-agg", fmt.Sprintf("%d group-by keys, %d aggregates", len(p.spec.GroupBy), len(p.spec.Aggs)))
		agg, err := exec.NewHashAggregate(op, p.spec.GroupBy, p.spec.Aggs, ctr)
		if err != nil {
			op.Close()
			return nil, err
		}
		op = wrap(agg)
	}
	return p.orderAndLimit(op, o)
}

// parallelOperator builds the morsel-driven plan: n worker chains (a
// range-bounded scan, plus a partial aggregation when the plan
// aggregates) concatenated by a bounded exchange in partition order,
// then the serial tail (aggregate merge, sort/top-n, limit).
func (p *Plan) parallelOperator(o ExecOpts, stageName string, n int) (exec.Operator, error) {
	traced := o.Trace != nil
	aggregated := len(p.spec.Aggs) > 0

	// Plan stages are appended now, in plan order; the workers' own
	// stages stay out of the chain and are absorbed when they finish.
	var scanStage, partialStage *trace.Stage
	if traced {
		scanStage = o.Trace.NewStage(stageName, p.scanDetail(o)+fmt.Sprintf(", dop %d", n))
		scanStage.RowsIn = p.tbl.Tuples
		if aggregated {
			partialStage = o.Trace.NewStage("partial-agg",
				fmt.Sprintf("%d group-by keys, %d aggregates, dop %d", len(p.spec.GroupBy), len(p.spec.Aggs), n))
		}
	}

	// Each worker's counter pool is heap-allocated individually: a shared
	// []Counters slice put every worker's hottest write targets on the
	// same cache lines, and the resulting false sharing serialized the
	// scan loops the morsels were supposed to parallelize.
	workerCtrs := make([]*cpumodel.Counters, n)
	for i := range workerCtrs {
		workerCtrs[i] = new(cpumodel.Counters)
	}
	workerScan := make([]*trace.Stage, n)
	workerAgg := make([]*trace.Stage, n)
	children := make([]exec.Operator, n)
	closeBuilt := func() {
		for _, c := range children {
			if c != nil {
				c.Close()
			}
		}
	}
	for i := 0; i < n; i++ {
		ctr := workerCtrs[i]
		if traced {
			workerScan[i] = o.Trace.WorkerStage(stageName, fmt.Sprintf("worker %d", i))
			ctr = &workerScan[i].Counters
		}
		op, err := p.scanRange(o.Ctx, ctr, o.Trace, p.bounds[i], p.bounds[i+1])
		if err != nil {
			closeBuilt()
			return nil, err
		}
		if traced {
			op = trace.Wrap(op, workerScan[i])
		}
		if aggregated {
			actr := ctr
			if traced {
				workerAgg[i] = o.Trace.WorkerStage("partial-agg", fmt.Sprintf("worker %d", i))
				actr = &workerAgg[i].Counters
			}
			pa, err := exec.NewPartialAgg(op, p.spec.GroupBy, p.spec.Aggs, actr)
			if err != nil {
				op.Close()
				closeBuilt()
				return nil, err
			}
			op = pa
			if traced {
				op = trace.Wrap(op, workerAgg[i])
			}
		}
		// Each worker chain checks the context itself, so Exchange
		// producers stop pulling even while the consumer is blocked.
		children[i] = exec.WithCancel(op, o.Ctx)
	}

	// The write path's overlay chains join the exchange as extra
	// producers after the scan partitions: fixed child order keeps the
	// result identical to the serial plan's scan-then-delta concat.
	var deltaCtrs []*cpumodel.Counters
	var deltaScan, deltaAgg []*trace.Stage
	var deltaStage *trace.Stage
	var deltaOpen *cpumodel.Counters
	if o.Delta != nil {
		// Open-time accounting (key-range run pruning) lands in its own
		// pool, merged with the workers at gather; the chains themselves
		// are rebound to per-chain pools below.
		deltaOpen = new(cpumodel.Counters)
		chains, err := p.deltaChains(o, deltaOpen)
		if err != nil {
			closeBuilt()
			return nil, err
		}
		if traced && (len(chains) > 0 || deltaOpen.PagesPruned > 0) {
			deltaStage = o.Trace.NewStage("delta", deltaDetail(o))
			deltaStage.RowsIn = o.Delta.DeltaRows()
		}
		deltaCtrs = make([]*cpumodel.Counters, len(chains))
		for j := range deltaCtrs {
			deltaCtrs[j] = new(cpumodel.Counters)
		}
		deltaScan = make([]*trace.Stage, len(chains))
		deltaAgg = make([]*trace.Stage, len(chains))
		for j, chain := range chains {
			ctr := deltaCtrs[j]
			if traced {
				deltaScan[j] = o.Trace.WorkerStage("delta", fmt.Sprintf("overlay %d", j))
				ctr = &deltaScan[j].Counters
			}
			chainCounters(chain, ctr)
			op := chain
			if traced {
				op = trace.Wrap(op, deltaScan[j])
			}
			if aggregated {
				actr := ctr
				if traced {
					deltaAgg[j] = o.Trace.WorkerStage("partial-agg", fmt.Sprintf("overlay %d", j))
					actr = &deltaAgg[j].Counters
				}
				pa, err := exec.NewPartialAgg(op, p.spec.GroupBy, p.spec.Aggs, actr)
				if err != nil {
					closeBuilt()
					return nil, err
				}
				op = pa
				if traced {
					op = trace.Wrap(op, deltaAgg[j])
				}
			}
			children = append(children, exec.WithCancel(op, o.Ctx))
		}
	}

	ex, err := exec.NewExchange(children, exec.DefaultBlockTuples, exchangeDepth)
	if err != nil {
		closeBuilt()
		return nil, err
	}

	// merge folds the workers' accounting into the plan, in partition
	// order so the result is deterministic at any interleaving; gather
	// runs it exactly once, after the exchange guarantees the workers
	// are finished (end of stream or Close).
	merge := func() {
		for i := 0; i < n; i++ {
			if traced {
				scanStage.Absorb(workerScan[i])
				if partialStage != nil {
					partialStage.Absorb(workerAgg[i])
				}
			} else {
				o.Counters.Add(*workerCtrs[i])
			}
		}
		for j := range deltaCtrs {
			if traced {
				deltaStage.Absorb(deltaScan[j])
				if partialStage != nil {
					partialStage.Absorb(deltaAgg[j])
				}
			} else {
				o.Counters.Add(*deltaCtrs[j])
			}
		}
		if deltaOpen != nil {
			if deltaStage != nil {
				deltaStage.Counters.Add(*deltaOpen)
			} else if !traced {
				o.Counters.Add(*deltaOpen)
			}
		}
	}
	var op exec.Operator = &gather{op: ex, merge: merge}

	if aggregated {
		if p.spec.Partial {
			// The exchange's concatenated state streams are the plan's
			// output; the final merge runs elsewhere (the coordinator).
			return op, nil
		}
		mctr, wrap := stage(o, "agg-merge", fmt.Sprintf("%d partial streams", n))
		m, err := exec.NewAggMerge(op, p.scanSchema, p.spec.GroupBy, p.spec.Aggs, mctr)
		if err != nil {
			op.Close()
			return nil, err
		}
		op = wrap(m)
	}
	return p.orderAndLimit(op, o)
}

// orderAndLimit appends the plan's ORDER BY (fused with LIMIT into a
// top-n when both are present) and LIMIT, identically for serial and
// parallel plans.
func (p *Plan) orderAndLimit(op exec.Operator, o ExecOpts) (exec.Operator, error) {
	if len(p.keys) > 0 {
		if p.spec.Limit > 0 {
			// ORDER BY + LIMIT fuse into a bounded-heap top-n, which keeps
			// only the requested rows in memory.
			ctr, wrap := stage(o, "top-n", fmt.Sprintf("%d keys, limit %d", len(p.keys), p.spec.Limit))
			tn, err := exec.NewTopN(op, p.keys, p.spec.Limit, ctr)
			if err != nil {
				op.Close()
				return nil, err
			}
			return wrap(tn), nil
		}
		ctr, wrap := stage(o, "sort", fmt.Sprintf("%d keys", len(p.keys)))
		srt, err := exec.NewSort(op, p.keys, ctr)
		if err != nil {
			op.Close()
			return nil, err
		}
		op = wrap(srt)
	}
	if p.spec.Limit > 0 {
		_, wrap := stage(o, "limit", fmt.Sprintf("limit %d", p.spec.Limit))
		lim, err := exec.NewLimit(op, p.spec.Limit)
		if err != nil {
			op.Close()
			return nil, err
		}
		op = wrap(lim)
	}
	return op, nil
}

// gather sits directly above a parallel plan's exchange and runs the
// plan's merge exactly once, at end of stream or Close — the two points
// where the exchange guarantees every worker has finished, so absorbing
// their counters and stages is race-free.
type gather struct {
	op     exec.Operator
	merge  func()
	merged bool
}

// Schema implements exec.Operator.
func (g *gather) Schema() *schema.Schema { return g.op.Schema() }

// Open implements exec.Operator.
func (g *gather) Open() error {
	g.merged = false
	return g.op.Open()
}

// Next implements exec.Operator.
//
//readopt:hotpath
func (g *gather) Next() (*exec.Block, error) {
	b, err := g.op.Next()
	if b == nil && err == nil && !g.merged {
		g.merged = true
		g.merge()
	}
	return b, err
}

// Close implements exec.Operator.
func (g *gather) Close() error {
	err := g.op.Close()
	if !g.merged {
		g.merged = true
		g.merge()
	}
	return err
}
