// Package tick is the dirty clockdiscipline fixture: direct package
// time calls in engine code, next to the two sanctioned escapes (a
// //readopt:clock implementation and a //readopt:ignore line).
package tick

import "time"

type record struct{ at time.Time }

func stamp() time.Time {
	return time.Now() // want "time.Now outside the injected Clock"
}

func wait() {
	time.Sleep(time.Millisecond) // want "time.Sleep outside the injected Clock"
}

func age(r record) time.Duration {
	return time.Since(r.at) // want "time.Since outside the injected Clock"
}

// Now is this fixture's clock implementation; the directive makes it
// the one place allowed to touch package time.
//
//readopt:clock
func Now() time.Time { return time.Now() }

func tolerated() time.Time {
	//readopt:ignore clockdiscipline fixture exercises the line-above escape hatch
	return time.Now()
}
