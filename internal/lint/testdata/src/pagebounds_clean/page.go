// Package page is the clean pagebounds fixture: the same accessors as
// the dirty fixture, phrased in named layout constants throughout.
package page

const (
	headerSize = 4
	pageIDSize = 4
	slotSize   = 4
)

// Geometry mirrors the real package's layout descriptor.
type Geometry struct {
	PageSize  int
	BaseSlots int
}

func (g Geometry) TrailerSize() int { return pageIDSize + slotSize*g.BaseSlots }

func header(p []byte) []byte { return p[0:headerSize] }

func pageID(g Geometry, p []byte) []byte {
	off := g.PageSize - g.TrailerSize()
	return p[off : off+pageIDSize]
}
