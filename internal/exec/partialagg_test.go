package exec

import (
	"bytes"
	"testing"

	"github.com/readoptdb/readopt/internal/cpumodel"
)

// partialChain builds PartialAgg per partition, an Exchange over them,
// and an AggMerge on top — the parallel aggregation shape the plan
// layer compiles. As in the plan layer, every concurrent worker charges
// its own counters pool; only the merge above the exchange shares ctr.
func partialChain(t *testing.T, parts [][]byte, groupBy []int, aggs []AggSpec, ctr *cpumodel.Counters) Operator {
	t.Helper()
	s := pairSchema("T")
	workerCtrs := make([]cpumodel.Counters, len(parts))
	children := make([]Operator, len(parts))
	for i, p := range parts {
		src, err := NewSliceSource(s, p, 7)
		if err != nil {
			t.Fatal(err)
		}
		pa, err := NewPartialAgg(src, groupBy, aggs, &workerCtrs[i])
		if err != nil {
			t.Fatal(err)
		}
		children[i] = pa
	}
	ex, err := NewExchange(children, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewAggMerge(ex, s, groupBy, aggs, ctr)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestPartialAggMergeMatchesHashAggregate: splitting the input into
// partitions, partially aggregating each, and merging the partial
// states produces byte-identical output to one serial HashAggregate —
// including the serial path's int32 truncation and sorted group order.
func TestPartialAggMergeMatchesHashAggregate(t *testing.T) {
	s := pairSchema("T")
	all := pairs(s,
		3, 10, 1, 5, 2, 7, 1, 6, 3, -4, 2, 0,
		1, 1000, 3, 2, 2, 9, 1, 3, 1, 8, 3, 11)
	w := s.Width()
	cases := []struct {
		name    string
		groupBy []int
		aggs    []AggSpec
	}{
		{"grouped", []int{0}, []AggSpec{
			{Func: Count}, {Func: Sum, Attr: 1}, {Func: Min, Attr: 1}, {Func: Max, Attr: 1}, {Func: Avg, Attr: 1}}},
		{"global", nil, []AggSpec{{Func: Count}, {Func: Sum, Attr: 1}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			src, err := NewSliceSource(s, all, 7)
			if err != nil {
				t.Fatal(err)
			}
			var serialCtr cpumodel.Counters
			serial, err := NewHashAggregate(src, tc.groupBy, tc.aggs, &serialCtr)
			if err != nil {
				t.Fatal(err)
			}
			want, err := Collect(serial)
			if err != nil {
				t.Fatal(err)
			}
			// Three uneven partitions, including row counts that do not
			// divide the block size.
			parts := [][]byte{all[:3*w], all[3*w : 4*w], all[4*w:]}
			var ctr cpumodel.Counters
			got, err := Collect(partialChain(t, parts, tc.groupBy, tc.aggs, &ctr))
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("partial+merge != serial: %d vs %d bytes", len(got), len(want))
			}
		})
	}
}

// TestPartialAggMergeEmptyInput: zero input rows produce zero output
// rows through the partial path, matching the serial aggregate.
func TestPartialAggMergeEmptyInput(t *testing.T) {
	var ctr cpumodel.Counters
	got, err := Collect(partialChain(t, [][]byte{nil, nil}, nil, []AggSpec{{Func: Count}}, &ctr))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("empty input produced %d bytes", len(got))
	}
}

// TestAggMergeRejectsWrongWidth: AggMerge refuses a child whose schema
// is not the partial-state transport for its spec.
func TestAggMergeRejectsWrongWidth(t *testing.T) {
	s := pairSchema("T")
	src, err := NewSliceSource(s, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	var ctr cpumodel.Counters
	if _, err := NewAggMerge(src, s, []int{0}, []AggSpec{{Func: Count}}, &ctr); err == nil {
		t.Error("AggMerge accepted a non-state child schema")
	}
}

// TestExchangeConcatsInPartitionOrder: the exchange returns its
// children's blocks in child order, byte-identical to sequential
// drains, regardless of producer interleaving.
func TestExchangeConcatsInPartitionOrder(t *testing.T) {
	s := pairSchema("T")
	var parts [][]byte
	var want []byte
	for p := int32(0); p < 4; p++ {
		var kv []int32
		for i := int32(0); i < 40+p*13; i++ {
			kv = append(kv, p*1000+i, i)
		}
		buf := pairs(s, kv...)
		parts = append(parts, buf)
		want = append(want, buf...)
	}
	children := make([]Operator, len(parts))
	for i, p := range parts {
		src, err := NewSliceSource(s, p, 9)
		if err != nil {
			t.Fatal(err)
		}
		children[i] = src
	}
	ex, err := NewExchange(children, 9, 2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Collect(ex)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("exchange output differs: %d vs %d bytes", len(got), len(want))
	}
}

// TestExchangeEarlyClose: closing an exchange before draining it (a
// LIMIT above the exchange does this) stops the producers cleanly.
func TestExchangeEarlyClose(t *testing.T) {
	s := pairSchema("T")
	var kv []int32
	for i := int32(0); i < 500; i++ {
		kv = append(kv, i, i)
	}
	buf := pairs(s, kv...)
	children := make([]Operator, 3)
	for i := range children {
		src, err := NewSliceSource(s, buf, 11)
		if err != nil {
			t.Fatal(err)
		}
		children[i] = src
	}
	ex, err := NewExchange(children, 11, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := ex.Open(); err != nil {
		t.Fatal(err)
	}
	if _, err := ex.Next(); err != nil {
		t.Fatal(err)
	}
	if err := ex.Close(); err != nil {
		t.Fatal(err)
	}
	// Close again is a no-op.
	if err := ex.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestExchangeCloseWithoutOpen: an exchange that was never opened still
// closes its children (which may hold live readers).
func TestExchangeCloseWithoutOpen(t *testing.T) {
	s := pairSchema("T")
	src, err := NewSliceSource(s, pairs(s, 1, 2), 0)
	if err != nil {
		t.Fatal(err)
	}
	ex, err := NewExchange([]Operator{src}, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := ex.Close(); err != nil {
		t.Fatal(err)
	}
}
