package readopt

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestPAXLayoutQueries(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "pax")
	tbl, err := GenerateTPCH(dir, Orders(), PAXLayout, 5000, 7, LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Layout() != PAXLayout {
		t.Fatalf("layout = %s", tbl.Layout())
	}
	th, err := tbl.SelectivityThreshold(0.10)
	if err != nil {
		t.Fatal(err)
	}
	q := Query{
		Select: []string{"O_ORDERKEY", "O_ORDERSTATUS", "O_TOTALPRICE"},
		Where:  []Cond{{Column: "O_ORDERDATE", Op: "<", Value: th}},
	}
	paxRows, err := tbl.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	// Reference: same query on a row table with the same seed.
	rowTbl, err := GenerateTPCH(filepath.Join(t.TempDir(), "row"), Orders(), RowLayout, 5000, 7, LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rowRows, err := rowTbl.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for paxRows.Next() {
		if !rowRows.Next() {
			t.Fatal("PAX produced more rows than row layout")
		}
		var pk, pp, rk, rp int
		var ps, rs string
		if err := paxRows.Scan(&pk, &ps, &pp); err != nil {
			t.Fatal(err)
		}
		if err := rowRows.Scan(&rk, &rs, &rp); err != nil {
			t.Fatal(err)
		}
		if pk != rk || ps != rs || pp != rp {
			t.Fatalf("row %d differs: pax (%d,%q,%d) row (%d,%q,%d)", n, pk, ps, pp, rk, rs, rp)
		}
		n++
	}
	if rowRows.Next() {
		t.Fatal("row layout produced more rows than PAX")
	}
	paxRows.Close()
	rowRows.Close()
	if n < 300 || n > 700 {
		t.Errorf("10%% selectivity returned %d of 5000", n)
	}
	// A PAX table occupies the same bytes as the row table.
	if tbl.DataBytes() != rowTbl.DataBytes() {
		t.Errorf("PAX bytes %d != row bytes %d", tbl.DataBytes(), rowTbl.DataBytes())
	}
}

func TestQueryBatchSharedScan(t *testing.T) {
	tbl := loadOrders(t, ColumnLayout, 5000)
	th, err := tbl.SelectivityThreshold(0.20)
	if err != nil {
		t.Fatal(err)
	}
	queries := []Query{
		{
			Select: []string{"O_ORDERKEY", "O_TOTALPRICE"},
			Where:  []Cond{{Column: "O_ORDERDATE", Op: "<", Value: th}},
		},
		{
			GroupBy: []string{"O_ORDERSTATUS"},
			Aggs:    []Agg{{Func: "count"}, {Func: "avg", Column: "O_TOTALPRICE"}},
		},
		{
			Aggs: []Agg{{Func: "count"}},
		},
		{
			Select:  []string{"O_ORDERKEY", "O_TOTALPRICE"},
			OrderBy: []Order{{Column: "O_TOTALPRICE", Desc: true}},
			Limit:   25,
		},
		{
			Select: []string{"O_ORDERKEY"},
			Limit:  10,
		},
		{
			GroupBy: []string{"O_ORDERSTATUS"},
			Aggs:    []Agg{{Func: "sum", Column: "O_TOTALPRICE"}},
			OrderBy: []Order{{Column: "SUM(O_TOTALPRICE)"}},
		},
	}
	batch, err := tbl.QueryBatch(queries)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != len(queries) {
		t.Fatalf("batch returned %d results", len(batch))
	}
	// Each batch result equals the solo result.
	for i, q := range queries {
		solo, err := tbl.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		soloBytes := rawTuples(t, solo)
		batchBytes := rawTuples(t, batch[i])
		if !bytes.Equal(soloBytes, batchBytes) {
			t.Errorf("query %d: batch result differs from solo (%d vs %d bytes)", i, len(batchBytes), len(soloBytes))
		}
	}
	// Validation paths.
	if _, err := tbl.QueryBatch([]Query{{}}); err == nil {
		t.Error("batch accepted an empty query")
	}
	if _, err := tbl.QueryBatch([]Query{{Select: []string{"O_ORDERKEY"}, Limit: -3}}); err == nil {
		t.Error("batch accepted a negative Limit")
	}
	if _, err := tbl.QueryBatch([]Query{{Select: []string{"O_ORDERKEY"}, OrderBy: []Order{{Column: "NOPE"}}}}); err == nil {
		t.Error("batch accepted an unknown order-by column")
	}
	if res, err := tbl.QueryBatch(nil); err != nil || res != nil {
		t.Error("empty batch should be a no-op")
	}
}

// rawTuples drains a Rows at the tuple level (bypassing Scan) for exact
// comparison.
func rawTuples(t *testing.T, rows *Rows) []byte {
	t.Helper()
	defer rows.Close()
	var out []byte
	for rows.Next() {
		out = append(out, rows.block.Tuple(rows.pos)...)
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestAdviseDesign(t *testing.T) {
	tbl := loadOrders(t, RowLayout, 20000)
	advice, err := tbl.AdviseDesign([]WorkloadQuery{
		{Columns: []string{"O_ORDERKEY", "O_TOTALPRICE"}, Selectivity: 0.10, Weight: 5},
		{Columns: []string{"O_ORDERDATE"}, Selectivity: 0.01},
	}, Hardware{CPUs: 2, ClockGHz: 3.2, Disks: 1, DiskMBps: 120})
	if err != nil {
		t.Fatal(err)
	}
	if advice.Layout != ColumnLayout {
		t.Errorf("narrow warehouse workload advised %s (speedup %.2f), want column", advice.Layout, advice.Speedup)
	}
	if advice.CompressedBytes >= advice.TupleBytes {
		t.Errorf("advised compression does not shrink: %d vs %d", advice.CompressedBytes, advice.TupleBytes)
	}
	if len(advice.Columns) != 7 {
		t.Fatalf("advice has %d columns", len(advice.Columns))
	}
	// The advised schema must be loadable.
	s, err := NewSchema("ORDERS-ADVISED", advice.Columns)
	if err != nil {
		t.Fatal(err)
	}
	if s.TupleBytes() != 32 {
		t.Errorf("advised schema decodes to %d bytes", s.TupleBytes())
	}
	// Unknown column error path.
	if _, err := tbl.AdviseDesign([]WorkloadQuery{{Columns: []string{"NOPE"}, Selectivity: 0.1}}, PaperHardware()); err == nil {
		t.Error("unknown column accepted")
	}
}

// TestQueryParallelMatchesSerial: partitioned execution returns exactly
// the serial result for every layout, dop and query shape.
func TestQueryParallelMatchesSerial(t *testing.T) {
	for _, layout := range []Layout{RowLayout, ColumnLayout, PAXLayout} {
		tbl, err := GenerateTPCH(filepath.Join(t.TempDir(), "t"), Orders(), layout, 7000, 11, LoadOptions{})
		if err != nil {
			t.Fatal(err)
		}
		th, err := tbl.SelectivityThreshold(0.15)
		if err != nil {
			t.Fatal(err)
		}
		queries := []Query{
			{
				Select: []string{"O_ORDERKEY", "O_TOTALPRICE"},
				Where:  []Cond{{Column: "O_ORDERDATE", Op: "<", Value: th}},
			},
			{
				GroupBy: []string{"O_ORDERSTATUS"},
				Aggs:    []Agg{{Func: "count"}, {Func: "avg", Column: "O_TOTALPRICE"}},
			},
			{
				Select:  []string{"O_TOTALPRICE"},
				OrderBy: []Order{{Column: "O_TOTALPRICE", Desc: true}},
				Limit:   25,
			},
		}
		for qi, q := range queries {
			serial, err := tbl.Query(q)
			if err != nil {
				t.Fatal(err)
			}
			want := rawTuples(t, serial)
			for _, dop := range []int{2, 3, 8} {
				par, err := tbl.QueryParallel(q, dop)
				if err != nil {
					t.Fatalf("%s q%d dop%d: %v", layout, qi, dop, err)
				}
				got := rawTuples(t, par)
				if !bytes.Equal(got, want) {
					t.Errorf("%s q%d dop%d: parallel result differs (%d vs %d bytes)",
						layout, qi, dop, len(got), len(want))
				}
			}
		}
	}
}

// TestQueryParallelDop1FallsBack: dop <= 1 is the serial path.
func TestQueryParallelDop1FallsBack(t *testing.T) {
	tbl := loadOrders(t, ColumnLayout, 1000)
	rows, err := tbl.QueryParallel(Query{Select: []string{"O_ORDERKEY"}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for rows.Next() {
		n++
	}
	rows.Close()
	if n != 1000 {
		t.Errorf("dop 1 returned %d rows", n)
	}
}

func TestExplain(t *testing.T) {
	for _, layout := range []Layout{RowLayout, ColumnLayout, PAXLayout} {
		tbl, err := GenerateTPCH(filepath.Join(t.TempDir(), "t"), Orders(), layout, 3000, 1, LoadOptions{})
		if err != nil {
			t.Fatal(err)
		}
		plan, err := tbl.Explain(Query{
			Select:  []string{"O_ORDERKEY", "O_TOTALPRICE"},
			Where:   []Cond{{Column: "O_ORDERDATE", Op: "<", Value: 1000}},
			Aggs:    []Agg{{Func: "count"}},
			GroupBy: []string{"O_ORDERSTATUS"},
			Limit:   5,
		}, PaperHardware())
		if err != nil {
			t.Fatalf("%s: %v", layout, err)
		}
		for _, want := range []string{"scan ORDERS", "predicates pushed", "O_ORDERDATE < 1000", "COUNT(*)", "limit: 5", "cpdb"} {
			if !strings.Contains(plan, want) {
				t.Errorf("%s: Explain missing %q:\n%s", layout, want, plan)
			}
		}
		switch layout {
		case ColumnLayout:
			if !strings.Contains(plan, "column scanner") || !strings.Contains(plan, "column files") {
				t.Errorf("column Explain lacks scanner detail:\n%s", plan)
			}
		case PAXLayout:
			if !strings.Contains(plan, "PAX scanner") {
				t.Errorf("PAX Explain lacks scanner detail:\n%s", plan)
			}
		case RowLayout:
			if !strings.Contains(plan, "every byte of the table") {
				t.Errorf("row Explain lacks I/O detail:\n%s", plan)
			}
		}
	}
	// Errors surface.
	tbl := loadOrders(t, RowLayout, 100)
	if _, err := tbl.Explain(Query{Select: []string{"NOPE"}}, PaperHardware()); err == nil {
		t.Error("Explain accepted unknown column")
	}
}

func TestVerifyFacade(t *testing.T) {
	tbl := loadOrders(t, ColumnLayout, 2000)
	if err := tbl.Verify(); err != nil {
		t.Fatalf("pristine table failed Verify: %v", err)
	}
}

func TestTableStats(t *testing.T) {
	colTbl, err := GenerateTPCH(filepath.Join(t.TempDir(), "z"), OrdersZ(), ColumnLayout, 10_000, 1, LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	st := colTbl.Stats()
	if st.Rows != 10_000 || len(st.Columns) != 7 {
		t.Fatalf("stats shape: %+v", st)
	}
	// Compression rate near the paper's 32/12.
	if st.CompressionRate < 2.2 || st.CompressionRate > 3.2 {
		t.Errorf("compression rate = %.2f, want about 2.7", st.CompressionRate)
	}
	var sum int64
	for _, c := range st.Columns {
		if c.DiskBytes <= 0 {
			t.Errorf("column %s has no disk footprint", c.Name)
		}
		sum += c.DiskBytes
	}
	if sum != st.DataBytes {
		t.Errorf("column bytes sum to %d, table holds %d", sum, st.DataBytes)
	}
	// The delta-encoded key column is far smaller than the raw custkey.
	byName := map[string]ColumnStat{}
	for _, c := range st.Columns {
		byName[c.Name] = c
	}
	if byName["O_ORDERKEY"].DiskBytes*2 > byName["O_CUSTKEY"].DiskBytes {
		t.Errorf("8-bit delta key (%d bytes) should be far below the raw 32-bit column (%d bytes)",
			byName["O_ORDERKEY"].DiskBytes, byName["O_CUSTKEY"].DiskBytes)
	}
	// Row layout pro-rates the single file.
	rowTbl := loadOrders(t, RowLayout, 2000)
	rst := rowTbl.Stats()
	var rsum int64
	for _, c := range rst.Columns {
		rsum += c.DiskBytes
	}
	if rsum <= 0 || rsum > rst.DataBytes {
		t.Errorf("pro-rated column bytes %d vs table %d", rsum, rst.DataBytes)
	}
}
