package scan

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"github.com/readoptdb/readopt/internal/aio"
	"github.com/readoptdb/readopt/internal/cpumodel"
	"github.com/readoptdb/readopt/internal/exec"
	"github.com/readoptdb/readopt/internal/schema"
	"github.com/readoptdb/readopt/internal/store"
	"github.com/readoptdb/readopt/internal/tpch"
)

const (
	testN    = 20000
	testSeed = 42
	unitSize = 64 << 10
	depth    = 4
)

// tables caches loaded test tables per schema/layout.
type tables struct {
	row *store.Table
	col *store.Table
}

func loadBoth(t *testing.T, sch *schema.Schema) tables {
	t.Helper()
	dir := t.TempDir()
	row, err := store.LoadSynthetic(filepath.Join(dir, "row"), sch, store.Row, 4096, testSeed, testN)
	if err != nil {
		t.Fatal(err)
	}
	col, err := store.LoadSynthetic(filepath.Join(dir, "col"), sch, store.Column, 4096, testSeed, testN)
	if err != nil {
		t.Fatal(err)
	}
	return tables{row: row, col: col}
}

// openOS opens a file through the prefetching OS reader, closing the file
// when the reader closes.
type fileReader struct {
	*aio.OSReader
	f *os.File
}

func (r *fileReader) Close() error {
	err := r.OSReader.Close()
	if cerr := r.f.Close(); err == nil {
		err = cerr
	}
	return err
}

func openOS(t *testing.T, path string) aio.Reader {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	r, err := aio.NewOSReader(f, unitSize, depth)
	if err != nil {
		t.Fatal(err)
	}
	return &fileReader{OSReader: r, f: f}
}

func newRow(t *testing.T, tbl *store.Table, preds []exec.Predicate, proj []int, counters *cpumodel.Counters) *RowScanner {
	t.Helper()
	s, err := NewRowScanner(RowConfig{
		Schema:   tbl.Schema,
		PageSize: tbl.PageSize,
		Reader:   openOS(t, tbl.RowPath()),
		Dicts:    tbl.Dicts,
		Preds:    preds,
		Proj:     proj,
		Counters: counters,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func colConfig(t *testing.T, tbl *store.Table, preds []exec.Predicate, proj []int, counters *cpumodel.Counters) ColConfig {
	t.Helper()
	need := map[int]bool{}
	for _, p := range preds {
		need[p.Attr] = true
	}
	for _, a := range proj {
		need[a] = true
	}
	readers := map[int]aio.Reader{}
	for a := range need {
		readers[a] = openOS(t, tbl.ColumnPath(a))
	}
	return ColConfig{
		Schema:   tbl.Schema,
		PageSize: tbl.PageSize,
		Readers:  readers,
		Dicts:    tbl.Dicts,
		Preds:    preds,
		Proj:     proj,
		Counters: counters,
	}
}

// reference computes the expected scan output straight from the
// generator.
func reference(t *testing.T, sch *schema.Schema, preds []exec.Predicate, proj []int) []byte {
	t.Helper()
	gen, err := tpch.ForSchema(sch, testSeed)
	if err != nil {
		t.Fatal(err)
	}
	out, err := projectSchema(sch, proj)
	if err != nil {
		t.Fatal(err)
	}
	for i := range preds {
		if err := preds[i].Validate(sch); err != nil {
			t.Fatal(err)
		}
	}
	tuple := make([]byte, sch.Width())
	var res []byte
	outTuple := make([]byte, out.Width())
	for i := 0; i < testN; i++ {
		gen.Next(tuple)
		ok := true
		for k := range preds {
			if !preds[k].Eval(sch, tuple) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		for k, a := range proj {
			off := sch.Offset(a)
			copy(outTuple[out.Offset(k):], tuple[off:off+sch.Attrs[a].Type.Size])
		}
		res = append(res, outTuple...)
	}
	return res
}

// scenario describes one differential test case.
type scenario struct {
	name  string
	sch   *schema.Schema
	preds func(*schema.Schema) []exec.Predicate
	proj  []int
}

func selPred(sch *schema.Schema, sel float64) []exec.Predicate {
	th, err := tpch.Threshold(sch, sel)
	if err != nil {
		panic(err)
	}
	return []exec.Predicate{exec.IntPred(0, exec.Lt, th)}
}

func scenarios() []scenario {
	return []scenario{
		{"orders/10pct/2cols", schema.Orders(),
			func(s *schema.Schema) []exec.Predicate { return selPred(s, 0.10) },
			[]int{schema.OOrderDate, schema.OTotalPrice}},
		{"orders/100pct/all", schema.Orders(),
			func(s *schema.Schema) []exec.Predicate { return nil },
			[]int{0, 1, 2, 3, 4, 5, 6}},
		{"orders/0.1pct/1col", schema.Orders(),
			func(s *schema.Schema) []exec.Predicate { return selPred(s, 0.001) },
			[]int{schema.OOrderDate}},
		{"orders/textpred", schema.Orders(),
			func(s *schema.Schema) []exec.Predicate {
				return append(selPred(s, 0.5), exec.TextPred(schema.OOrderStatus, exec.Eq, "F"))
			},
			[]int{schema.OOrderKey, schema.OOrderStatus, schema.OOrderPriority}},
		{"ordersZ/10pct/mixed", schema.OrdersZ(),
			func(s *schema.Schema) []exec.Predicate { return selPred(s, 0.10) },
			[]int{schema.OOrderDate, schema.OOrderKey, schema.OOrderPriority, schema.OTotalPrice}},
		{"ordersZ/deltaproj", schema.OrdersZ(),
			func(s *schema.Schema) []exec.Predicate { return selPred(s, 0.05) },
			[]int{schema.OOrderKey}},
		{"ordersZFOR/10pct", schema.OrdersZFOR(),
			func(s *schema.Schema) []exec.Predicate { return selPred(s, 0.10) },
			[]int{schema.OOrderDate, schema.OOrderKey}},
		{"lineitemZ/strings", schema.LineitemZ(),
			func(s *schema.Schema) []exec.Predicate { return selPred(s, 0.10) },
			[]int{schema.LPartKey, schema.LShipInstruct, schema.LShipMode, schema.LComment, schema.LShipDate}},
		{"lineitem/wide", schema.Lineitem(),
			func(s *schema.Schema) []exec.Predicate { return selPred(s, 0.02) },
			[]int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15}},
		{"ordersZ/predondict", schema.OrdersZ(),
			func(s *schema.Schema) []exec.Predicate {
				return []exec.Predicate{exec.TextPred(schema.OOrderPriority, exec.Eq, "2-HIGH")}
			},
			[]int{schema.OOrderDate, schema.OOrderPriority}},
	}
}

// TestScannersAgreeWithReference is the central differential test: for
// every scenario, the row scanner, the pipelined column scanner and the
// single-iterator column scanner must all produce exactly the reference
// result.
func TestScannersAgreeWithReference(t *testing.T) {
	for _, sc := range scenarios() {
		t.Run(sc.name, func(t *testing.T) {
			tbls := loadBoth(t, sc.sch)
			preds := sc.preds(sc.sch)
			want := reference(t, sc.sch, preds, sc.proj)

			row := newRow(t, tbls.row, preds, sc.proj, nil)
			gotRow, err := exec.Collect(row)
			if err != nil {
				t.Fatalf("row scan: %v", err)
			}
			if !bytes.Equal(gotRow, want) {
				t.Fatalf("row scan output differs from reference (%d vs %d bytes)", len(gotRow), len(want))
			}

			col, err := NewColScanner(colConfig(t, tbls.col, preds, sc.proj, nil))
			if err != nil {
				t.Fatal(err)
			}
			gotCol, err := exec.Collect(col)
			if err != nil {
				t.Fatalf("column scan: %v", err)
			}
			if !bytes.Equal(gotCol, want) {
				t.Fatalf("column scan output differs from reference (%d vs %d bytes)", len(gotCol), len(want))
			}

			single, err := NewSingleIterScanner(colConfig(t, tbls.col, preds, sc.proj, nil))
			if err != nil {
				t.Fatal(err)
			}
			gotSingle, err := exec.Collect(single)
			if err != nil {
				t.Fatalf("single-iterator scan: %v", err)
			}
			if !bytes.Equal(gotSingle, want) {
				t.Fatalf("single-iterator output differs from reference (%d vs %d bytes)", len(gotSingle), len(want))
			}
		})
	}
}

// TestColumnIOBytesAreSelective: the column scanner reads only the files
// of the selected columns; the row scanner reads the whole table.
func TestColumnIOBytesAreSelective(t *testing.T) {
	tbls := loadBoth(t, schema.Orders())
	preds := selPred(schema.Orders(), 0.10)
	proj := []int{schema.OOrderDate, schema.OTotalPrice}

	var rowC, colC cpumodel.Counters
	row := newRow(t, tbls.row, preds, proj, &rowC)
	if _, err := exec.Drain(row); err != nil {
		t.Fatal(err)
	}
	col, err := NewColScanner(colConfig(t, tbls.col, preds, proj, &colC))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := exec.Drain(col); err != nil {
		t.Fatal(err)
	}
	if rowC.IOBytes < testN*32 {
		t.Errorf("row scan read %d bytes, want at least %d", rowC.IOBytes, testN*32)
	}
	// Column scan reads 2 of 7 columns (8 of 32 bytes per tuple).
	if colC.IOBytes >= rowC.IOBytes/3 {
		t.Errorf("column scan read %d bytes vs row %d; expected about a quarter", colC.IOBytes, rowC.IOBytes)
	}
	if colC.IOBytes < testN*8 {
		t.Errorf("column scan read %d bytes, want at least %d", colC.IOBytes, testN*8)
	}
}

// TestSelectivityReducesColumnCPU: at 0.1% selectivity the inner scan
// nodes process a thousandth of the values, so the column scanner's
// instruction count collapses compared with 100% selectivity.
func TestSelectivityReducesColumnCPU(t *testing.T) {
	tbls := loadBoth(t, schema.Orders())
	proj := []int{schema.OOrderDate, schema.OCustKey, schema.OTotalPrice}
	run := func(sel float64) int64 {
		var c cpumodel.Counters
		col, err := NewColScanner(colConfig(t, tbls.col, selPred(schema.Orders(), sel), proj, &c))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := exec.Drain(col); err != nil {
			t.Fatal(err)
		}
		return c.Instr
	}
	low, high := run(0.001), run(1.0)
	if low*2 > high {
		t.Errorf("0.1%% selectivity used %d instr, 100%% used %d; expected a large gap", low, high)
	}
}

// TestRowScannerInsensitiveToProjectivity: the row scanner's I/O does not
// depend on how many attributes are selected.
func TestRowScannerInsensitiveToProjectivity(t *testing.T) {
	tbls := loadBoth(t, schema.Orders())
	run := func(proj []int) int64 {
		var c cpumodel.Counters
		row := newRow(t, tbls.row, selPred(schema.Orders(), 0.10), proj, &c)
		if _, err := exec.Drain(row); err != nil {
			t.Fatal(err)
		}
		return c.IOBytes
	}
	one := run([]int{0})
	all := run([]int{0, 1, 2, 3, 4, 5, 6})
	if one != all {
		t.Errorf("row scan I/O changed with projectivity: %d vs %d", one, all)
	}
}

func TestScannerValidation(t *testing.T) {
	tbls := loadBoth(t, schema.Orders())
	// Missing reader for a selected column.
	cfg := colConfig(t, tbls.col, nil, []int{0, 1}, nil)
	delete(cfg.Readers, 1)
	if _, err := NewColScanner(cfg); err == nil {
		t.Error("missing column reader accepted")
	}
	// Empty projection.
	if _, err := NewRowScanner(RowConfig{Schema: tbls.row.Schema, Reader: openOS(t, tbls.row.RowPath())}); err == nil {
		t.Error("empty projection accepted")
	}
	// Invalid predicate.
	if _, err := NewRowScanner(RowConfig{
		Schema: tbls.row.Schema,
		Reader: openOS(t, tbls.row.RowPath()),
		Preds:  []exec.Predicate{exec.IntPred(99, exec.Lt, 0)},
		Proj:   []int{0},
	}); err == nil {
		t.Error("invalid predicate accepted")
	}
	// Nil reader.
	if _, err := NewRowScanner(RowConfig{Schema: tbls.row.Schema, Proj: []int{0}}); err == nil {
		t.Error("nil reader accepted")
	}
}

// TestScannerUnderAggregation wires a scanner under the query engine's
// aggregation, the shape of every experiment query.
func TestScannerUnderAggregation(t *testing.T) {
	tbls := loadBoth(t, schema.Orders())
	preds := selPred(schema.Orders(), 0.10)
	proj := []int{schema.OOrderDate, schema.OTotalPrice}

	row := newRow(t, tbls.row, preds, proj, nil)
	aggR, err := exec.NewHashAggregate(row, nil, []exec.AggSpec{{Func: exec.Count}, {Func: exec.Sum, Attr: 1}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	gotR, err := exec.Collect(aggR)
	if err != nil {
		t.Fatal(err)
	}
	col, err := NewColScanner(colConfig(t, tbls.col, preds, proj, nil))
	if err != nil {
		t.Fatal(err)
	}
	aggC, err := exec.NewHashAggregate(col, nil, []exec.AggSpec{{Func: exec.Count}, {Func: exec.Sum, Attr: 1}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	gotC, err := exec.Collect(aggC)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotR, gotC) {
		t.Error("aggregation over row and column scans disagrees")
	}
	out := aggR.Schema()
	if cnt := out.Int32At(gotR, 0); cnt < testN/20 || cnt > testN/5 {
		t.Errorf("qualifying count %d implausible for 10%% selectivity of %d", cnt, testN)
	}
}
