package wos

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"github.com/readoptdb/readopt/internal/fault"
	"github.com/readoptdb/readopt/internal/store"
)

// The on-disk layout of an ingest table directory:
//
//	CURRENT                  → "manifest-0000042.json <crc>", atomic swap
//	manifest-0000042.json    immutable epoch description (+ .crc sidecar)
//	gen-0000017/             a read-optimized store.Table generation
//	run-0000039.run          sorted immutable run (+ .crc page sidecar)
//
// Every epoch change — spill, compaction — writes a new immutable
// manifest and then swaps CURRENT. Readers pin the version they opened;
// files of superseded versions are deleted only when the last pinned
// snapshot over them is released.

const (
	currentFile    = "CURRENT"
	manifestPrefix = "manifest-"
	genPrefix      = "gen-"
	runPrefix      = "run-"
	manifestFormat = 1
)

func manifestName(epoch int64) string { return fmt.Sprintf("%s%07d.json", manifestPrefix, epoch) }
func genName(seq int64) string        { return fmt.Sprintf("%s%07d", genPrefix, seq) }
func runName(seq int64) string        { return fmt.Sprintf("%s%07d.run", runPrefix, seq) }

// RunMeta describes one immutable sorted run file, as recorded in the
// manifest. Sparse is the run's sparse key index: the first key of each
// page, enabling page-level key-range pruning without touching the
// file. SparseMax is its companion — the last key of each page — which
// makes the lower end of a key-range window exact even when duplicate
// keys straddle a page boundary. Runs written before SparseMax existed
// carry none; their windows fall back to the Sparse-only bound.
type RunMeta struct {
	File      string  `json:"file"`
	Tuples    int64   `json:"tuples"`
	Pages     int     `json:"pages"`
	PageSize  int     `json:"page_size"`
	MinKey    int32   `json:"min_key"`
	MaxKey    int32   `json:"max_key"`
	SchemaTag uint32  `json:"schema_tag"`
	Sparse    []int32 `json:"sparse"`
	SparseMax []int32 `json:"sparse_max,omitempty"`
}

// manifest is one epoch's immutable description of the table: which
// generation holds the merged read-optimized data and which runs layer
// on top of it, oldest first.
type manifest struct {
	Format     int       `json:"format"`
	Epoch      int64     `json:"epoch"`
	Key        string    `json:"key"`
	Seq        int64     `json:"seq"` // next file sequence number
	Generation string    `json:"generation"`
	Runs       []RunMeta `json:"runs"`
}

// writeManifest persists m as an immutable manifest file with a CRC
// sidecar and swaps CURRENT to it. The old manifest file stays on disk
// until the version that referenced it drains.
func writeManifest(dir string, m *manifest) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("wos: encoding manifest: %w", err)
	}
	name := manifestName(m.Epoch)
	if err := writeFileWithCRC(dir, name, data); err != nil {
		return err
	}
	return writeCurrent(dir, name)
}

// readManifest loads and verifies the manifest CURRENT points at.
func readManifest(dir string) (*manifest, error) {
	name, err := readCurrent(dir)
	if err != nil {
		return nil, err
	}
	data, err := readFileWithCRC(dir, name)
	if err != nil {
		return nil, err
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, corruptf("wos: decoding %s: %v", name, err)
	}
	if m.Format != manifestFormat {
		return nil, corruptf("wos: manifest format %d, want %d", m.Format, manifestFormat)
	}
	return &m, nil
}

// verifyManifest re-reads the live manifest against its sidecar; used by
// Fsck to cover the metadata path, not just data pages.
func verifyManifest(dir string) error {
	_, err := readManifest(dir)
	return err
}

// IsIngestDir reports whether dir holds an ingest table (a CURRENT
// pointer), as opposed to a plain read-only store.Table directory.
func IsIngestDir(dir string) bool {
	_, err := os.Stat(filepath.Join(dir, currentFile))
	return err == nil
}

// gcOrphans removes files a crash may have left behind: *.tmp droppings,
// and generations, runs or manifests not referenced by the live
// manifest. Called once at Open, before any snapshot exists.
func gcOrphans(dir string, m *manifest) error {
	live := map[string]bool{
		currentFile:                              true,
		manifestName(m.Epoch):                    true,
		m.Generation:                             true,
		store.SidecarName(manifestName(m.Epoch)): true,
	}
	for _, r := range m.Runs {
		live[r.File] = true
		live[store.SidecarName(r.File)] = true
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		name := e.Name()
		if live[name] {
			continue
		}
		stale := strings.HasSuffix(name, ".tmp") ||
			strings.HasPrefix(name, manifestPrefix) ||
			strings.HasPrefix(name, genPrefix) ||
			strings.HasPrefix(name, runPrefix)
		if !stale {
			continue
		}
		if err := os.RemoveAll(filepath.Join(dir, name)); err != nil {
			return fmt.Errorf("wos: removing orphan %s: %w", name, err)
		}
	}
	return nil
}

// corruptf builds a corruption-tagged error; an alias keeping call sites
// in this package short.
func corruptf(format string, args ...any) error {
	return fault.Corruptf(format, args...)
}
