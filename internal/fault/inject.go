package fault

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sync"
	"time"

	"github.com/readoptdb/readopt/internal/aio"
	"github.com/readoptdb/readopt/internal/clock"
)

// Config tunes a deterministic Injector. Rates are probabilities in
// [0,1] evaluated per I/O unit; every decision is a pure function of
// (Seed, fault tag, file name, unit byte offset), so a schedule replays
// identically across runs, layouts and worker interleavings — the same
// page always fails the same way no matter which goroutine reads it.
type Config struct {
	Seed int64
	// ReadErrRate injects a transient read error instead of delivering
	// the unit. The reader's position does not advance, so a retry that
	// reopens at the same offset hits the fail-then-recover logic below.
	ReadErrRate float64
	// PersistRate is the probability that an injected read error keeps
	// failing on each retry (0 = always recovers on the first retry,
	// 1 = permanent failure that exhausts the retry budget).
	PersistRate float64
	// TornRate truncates a unit by 1–7 bytes, simulating a torn write —
	// never a whole page, so integrity checking must catch it.
	TornRate float64
	// FlipRate flips one bit somewhere in the unit, the silent
	// corruption that only per-page checksums can catch.
	FlipRate float64
	// LatencyRate stalls a unit's delivery by Latency.
	LatencyRate float64
	Latency     time.Duration
	// Clock drives injected latency; nil means the real clock.
	Clock clock.Clock
}

// Injector wraps aio.Readers with seeded, deterministic faults. One
// Injector is shared by all readers of a run; the only mutable state is
// the per-(file, offset) attempt count behind fail-then-recover, so a
// Wrap'd reader costs one mutex hit per injected failure, not per unit.
type Injector struct {
	cfg Config

	mu       sync.Mutex
	attempts map[string]int
}

// NewInjector returns an Injector for cfg.
func NewInjector(cfg Config) *Injector {
	if cfg.Clock == nil {
		cfg.Clock = clock.Real{}
	}
	return &Injector{cfg: cfg, attempts: make(map[string]int)}
}

// Wrap returns r with faults injected. name identifies the file and off
// is the absolute byte offset of r's first unit, so decisions stay
// aligned to file positions however the file is sectioned across
// workers or reopened by retries.
func (in *Injector) Wrap(name string, off int64, r aio.Reader) aio.Reader {
	return &injectReader{in: in, name: name, off: off, inner: r}
}

// bump increments and returns the attempt count for a unit.
func (in *Injector) bump(key string) int {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.attempts[key]++
	return in.attempts[key]
}

// roll maps (seed, tag, name, off) onto a uniform float in [0,1).
func (in *Injector) roll(tag, name string, off int64) float64 {
	return float64(in.hash(tag, name, off)>>11) / float64(1<<53)
}

// hash is FNV-64a over the decision coordinates.
func (in *Injector) hash(tag, name string, off int64) uint64 {
	h := fnv.New64a()
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(in.cfg.Seed))
	_, _ = h.Write(b[:])
	_, _ = h.Write([]byte(tag))
	_, _ = h.Write([]byte(name))
	binary.LittleEndian.PutUint64(b[:], uint64(off))
	_, _ = h.Write(b[:])
	return h.Sum64()
}

type injectReader struct {
	in    *Injector
	name  string
	off   int64
	inner aio.Reader
}

func (r *injectReader) Next() ([]byte, error) {
	in := r.in
	off := r.off
	if in.cfg.LatencyRate > 0 && in.roll("lat", r.name, off) < in.cfg.LatencyRate {
		in.cfg.Clock.Sleep(in.cfg.Latency)
	}
	if in.cfg.ReadErrRate > 0 && in.roll("err", r.name, off) < in.cfg.ReadErrRate {
		attempt := in.bump(r.name + ":" + fmt.Sprint(off))
		if attempt == 1 || in.roll("persist", r.name, off) < in.cfg.PersistRate {
			return nil, Transient(fmt.Errorf("injected read error at %s+%d (attempt %d)", r.name, off, attempt))
		}
	}
	buf, err := r.inner.Next()
	if err != nil {
		return buf, err
	}
	r.off += int64(len(buf))
	if in.cfg.FlipRate > 0 && in.roll("flip", r.name, off) < in.cfg.FlipRate {
		bit := in.hash("flipbit", r.name, off) % uint64(len(buf)*8)
		buf[bit/8] ^= 1 << (bit % 8)
	}
	if in.cfg.TornRate > 0 && in.roll("torn", r.name, off) < in.cfg.TornRate {
		k := int(in.hash("tornlen", r.name, off)%7) + 1
		return buf[:len(buf)-k], nil
	}
	return buf, nil
}

func (r *injectReader) Close() error { return r.inner.Close() }

// Stats forwards the inner reader's I/O accounting so trace snapshots
// see through the injection layer.
func (r *injectReader) Stats() aio.Stats {
	if s, ok := r.inner.(interface{ Stats() aio.Stats }); ok {
		return s.Stats()
	}
	return aio.Stats{}
}
