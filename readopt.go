// Package readopt is a read-optimized relational storage engine and query
// processor that can lay the same table out as rows or as columns, an
// implementation and reproduction of "Performance Tradeoffs in
// Read-Optimized Databases" (Harizopoulos, Liang, Abadi, Madden;
// VLDB 2006).
//
// The engine stores tables in dense-packed 4KB pages — whole tuples per
// page for the row layout, single-column values per page (one file per
// column) for the column layout — optionally compressed per attribute
// with the paper's lightweight fixed-width schemes (bit packing,
// dictionary, FOR and FOR-delta). Scans run through a pull-based
// block-iterator query engine with SARGable predicates, projection,
// sort- and hash-based aggregation and merge join, over a prefetching
// asynchronous I/O layer.
//
// The package also exposes the paper's analytical model (cycles per disk
// byte, row/column speedup prediction) and a harness that regenerates
// every figure and table of the paper's evaluation on a simulated version
// of its 2006 hardware. See the examples directory for runnable
// walkthroughs and DESIGN.md for the system inventory.
package readopt

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/readoptdb/readopt/internal/schema"
)

// ColumnType names a fixed-length attribute type: "int32" or "text(N)".
type ColumnType string

// Int32 is the four-byte integer column type.
const Int32 ColumnType = "int32"

// Text returns the fixed-width text column type of n bytes.
func Text(n int) ColumnType { return ColumnType(fmt.Sprintf("text(%d)", n)) }

// Compression names a per-column compression scheme.
type Compression string

const (
	// None stores values verbatim.
	None Compression = ""
	// BitPack stores each value in a fixed number of bits (null
	// suppression).
	BitPack Compression = "pack"
	// Dict stores bit-packed indexes into a dictionary of distinct
	// values.
	Dict Compression = "dict"
	// FOR stores differences from a per-page base value.
	FOR Compression = "for"
	// FORDelta stores differences from the previous value in the page.
	FORDelta Compression = "delta"
)

// Column declares one attribute of a table.
type Column struct {
	Name string
	Type ColumnType
	// Compression and Bits choose the stored representation; leave zero
	// for verbatim storage. Bits is the fixed code width.
	Compression Compression
	Bits        int
}

// Schema is a table definition.
type Schema struct {
	inner *schema.Schema
}

// NewSchema builds a table definition from column declarations.
func NewSchema(name string, cols []Column) (*Schema, error) {
	attrs := make([]schema.Attribute, len(cols))
	for i, c := range cols {
		t, err := parseType(c.Type)
		if err != nil {
			return nil, fmt.Errorf("readopt: column %s: %w", c.Name, err)
		}
		enc, err := parseCompression(c.Compression)
		if err != nil {
			return nil, fmt.Errorf("readopt: column %s: %w", c.Name, err)
		}
		attrs[i] = schema.Attribute{Name: c.Name, Type: t, Enc: enc, Bits: c.Bits}
	}
	s, err := schema.New(name, attrs)
	if err != nil {
		return nil, err
	}
	return &Schema{inner: s}, nil
}

func parseType(t ColumnType) (schema.Type, error) {
	s := string(t)
	switch {
	case s == "int32":
		return schema.IntType, nil
	case strings.HasPrefix(s, "text(") && strings.HasSuffix(s, ")"):
		n, err := strconv.Atoi(s[5 : len(s)-1])
		if err != nil || n <= 0 {
			return schema.Type{}, fmt.Errorf("invalid text width in %q", s)
		}
		return schema.TextType(n), nil
	default:
		return schema.Type{}, fmt.Errorf("unknown column type %q", s)
	}
}

func parseCompression(c Compression) (schema.Encoding, error) {
	switch c {
	case None:
		return schema.None, nil
	case BitPack:
		return schema.BitPack, nil
	case Dict:
		return schema.Dict, nil
	case FOR:
		return schema.FOR, nil
	case FORDelta:
		return schema.FORDelta, nil
	default:
		return schema.None, fmt.Errorf("unknown compression %q", c)
	}
}

// Name returns the table name.
func (s *Schema) Name() string { return s.inner.Name }

// Columns returns the column names in order.
func (s *Schema) Columns() []string {
	out := make([]string, s.inner.NumAttrs())
	for i, a := range s.inner.Attrs {
		out[i] = a.Name
	}
	return out
}

// Types returns the column types in order, aligned with Columns.
func (s *Schema) Types() []ColumnType {
	out := make([]ColumnType, s.inner.NumAttrs())
	for i, a := range s.inner.Attrs {
		if a.Type.Kind == schema.Int32 {
			out[i] = Int32
		} else {
			out[i] = Text(a.Type.Size)
		}
	}
	return out
}

// TupleBytes returns the decoded tuple width in bytes.
func (s *Schema) TupleBytes() int { return s.inner.Width() }

// StoredTupleBytes returns the on-disk tuple width: padded for an
// uncompressed row layout, the packed code width for a compressed one.
func (s *Schema) StoredTupleBytes() int {
	if s.inner.Compressed() {
		return s.inner.CompressedWidth()
	}
	return s.inner.StoredWidth()
}

// String renders the schema like the paper's Figure 5.
func (s *Schema) String() string { return s.inner.String() }

// The paper's benchmark schemas (Figure 5), TPC-H-derived.
func Lineitem() *Schema  { return &Schema{inner: schema.Lineitem()} }
func LineitemZ() *Schema { return &Schema{inner: schema.LineitemZ()} }
func Orders() *Schema    { return &Schema{inner: schema.Orders()} }
func OrdersZ() *Schema   { return &Schema{inner: schema.OrdersZ()} }
