package exec

import (
	"bytes"
	"fmt"
	"sort"

	"github.com/readoptdb/readopt/internal/cpumodel"
	"github.com/readoptdb/readopt/internal/schema"
)

// SortKey orders by one attribute.
type SortKey struct {
	Attr int
	Desc bool
}

// Sort is a blocking, in-memory sort operator: it drains its child on
// Open, orders the tuples by the given keys, and streams the result. In a
// read-optimized store most inputs arrive clustered from the bulk loader,
// so Sort exists for the residual cases — ordering results for
// presentation and feeding the sort-based aggregation or merge join when
// the clustering key differs from the grouping key.
type Sort struct {
	child    Operator
	keys     []SortKey
	counters *cpumodel.Counters
	costs    cpumodel.Costs

	tuples []byte
	pos    int
	block  *Block
	opened bool
}

// NewSort wraps child with an order-by on keys (applied in order, first
// key most significant). counters may be nil.
func NewSort(child Operator, keys []SortKey, counters *cpumodel.Counters) (*Sort, error) {
	if len(keys) == 0 {
		return nil, fmt.Errorf("exec: sort with no keys")
	}
	sch := child.Schema()
	for _, k := range keys {
		if k.Attr < 0 || k.Attr >= sch.NumAttrs() {
			return nil, fmt.Errorf("exec: sort key %d out of range for %s", k.Attr, sch.Name)
		}
	}
	return &Sort{
		child:    child,
		keys:     keys,
		counters: counters,
		costs:    cpumodel.DefaultCosts(),
		block:    NewBlock(sch, DefaultBlockTuples),
	}, nil
}

// Schema implements Operator.
func (s *Sort) Schema() *schema.Schema { return s.child.Schema() }

// Open drains and sorts the input.
func (s *Sort) Open() error {
	if err := s.child.Open(); err != nil {
		return err
	}
	sch := s.child.Schema()
	width := sch.Width()
	s.tuples = s.tuples[:0]
	for {
		b, err := s.child.Next()
		if err != nil {
			return err
		}
		if b == nil {
			break
		}
		for i := 0; i < b.Len(); i++ {
			s.tuples = append(s.tuples, b.Tuple(i)...)
		}
	}
	n := len(s.tuples) / width
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	less := func(a, b int) bool {
		ta := s.tuples[a*width : (a+1)*width]
		tb := s.tuples[b*width : (b+1)*width]
		for _, k := range s.keys {
			s.counters.AddInstr(s.costs.Compare)
			var c int
			if sch.Attrs[k.Attr].Type.Kind == schema.Int32 {
				va, vb := sch.Int32At(ta, k.Attr), sch.Int32At(tb, k.Attr)
				switch {
				case va < vb:
					c = -1
				case va > vb:
					c = 1
				}
			} else {
				c = bytes.Compare(sch.TextAt(ta, k.Attr), sch.TextAt(tb, k.Attr))
			}
			if k.Desc {
				c = -c
			}
			if c != 0 {
				return c < 0
			}
		}
		return false
	}
	sort.SliceStable(idx, func(a, b int) bool { return less(idx[a], idx[b]) })
	out := make([]byte, len(s.tuples))
	for pos, i := range idx {
		copy(out[pos*width:], s.tuples[i*width:(i+1)*width])
	}
	s.counters.AddInstr(int64(len(s.tuples)) * s.costs.CopyPerByte)
	s.tuples = out
	s.pos = 0
	s.opened = true
	return nil
}

// Next implements Operator.
func (s *Sort) Next() (*Block, error) {
	if !s.opened {
		return nil, errNextBeforeOpen
	}
	sch := s.child.Schema()
	width := sch.Width()
	total := len(s.tuples) / width
	if s.pos >= total {
		return nil, nil
	}
	s.block.Reset()
	for s.pos < total && !s.block.Full() {
		s.block.AppendTuple(s.tuples[s.pos*width : (s.pos+1)*width])
		s.pos++
	}
	s.counters.AddInstr(s.costs.BlockOverhead)
	return s.block, nil
}

// Close implements Operator.
func (s *Sort) Close() error {
	s.tuples = nil
	s.opened = false
	return s.child.Close()
}
