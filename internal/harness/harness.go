// Package harness regenerates every table and figure of the paper's
// evaluation (Section 4 and the Figure 2 summary). Each experiment runs
// in two phases, reproducing the paper's methodology on simulated 2006
// hardware:
//
//  1. Measure: the real engine scans a real (smaller-scale) table on this
//     machine through the scan package, counting its work — instructions,
//     memory traffic, I/O requests — with cpumodel.Counters. Scan work is
//     linear in tuple count, so the counts scale exactly to the paper's
//     60M-tuple tables; the machine model converts them into the paper's
//     CPU-time breakdown (sys / usr-uop / usr-L2 / usr-L1 / usr-rest).
//
//  2. Replay: the scan's I/O pattern is replayed at full 60M-tuple scale
//     against the simulated disk array — per-column files, batched
//     prefetching at the configured depth, competing scans — inside the
//     deterministic event kernel, with the measured CPU time interleaved
//     between I/O waits. The replay's completion time is the experiment's
//     elapsed time, with CPU and I/O overlapped exactly as the paper's
//     engine overlaps them.
package harness

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"github.com/readoptdb/readopt/internal/cpumodel"
	"github.com/readoptdb/readopt/internal/page"
	"github.com/readoptdb/readopt/internal/schema"
	"github.com/readoptdb/readopt/internal/simdisk"
	"github.com/readoptdb/readopt/internal/store"
)

// Params configures the reproduction. The zero value is unusable; start
// from DefaultParams.
type Params struct {
	// Machine is the modelled CPU platform.
	Machine cpumodel.Machine
	// Disk is the modelled disk array.
	Disk simdisk.Config
	// Costs is the engine's instruction cost table.
	Costs cpumodel.Costs
	// UnitPerDisk is the per-disk I/O unit in bytes. The paper's 128KB
	// I/O unit is modelled as one page-aligned request striped over the
	// three disks (40KB per disk, 120KB total), which reproduces the
	// paper's seek-amortization behaviour at its prefetch depths.
	UnitPerDisk int64
	// PrefetchDepth is the default number of I/O units issued at once per
	// file (48 in the paper's default configuration).
	PrefetchDepth int
	// PageSize is the database page size (4KB).
	PageSize int
	// MeasureTuples is the tuple count of the real tables the measure
	// phase scans.
	MeasureTuples int64
	// FullTuples is the scale the results are reported at (the paper's
	// LINEITEM scale 10 and ORDERS scale 40 both hold 60M tuples).
	FullTuples int64
	// Seed drives the deterministic data generator.
	Seed int64
	// DataDir caches the measure-phase tables across experiments; empty
	// means a fresh temporary directory.
	DataDir string
	// BlockTuples is the engine block size (100 in every experiment).
	BlockTuples int
}

// DefaultParams returns the paper's experimental configuration.
func DefaultParams() Params {
	disk := simdisk.DefaultConfig()
	disk.Seek = 5 * time.Millisecond
	disk.StripeUnit = 40 << 10
	return Params{
		Machine:       cpumodel.Paper2006(),
		Disk:          disk,
		Costs:         cpumodel.DefaultCosts(),
		UnitPerDisk:   40 << 10,
		PrefetchDepth: 48,
		PageSize:      page.DefaultSize,
		MeasureTuples: 200_000,
		FullTuples:    60_000_000,
		Seed:          1,
		BlockTuples:   100,
	}
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if err := p.Machine.Validate(); err != nil {
		return err
	}
	if err := p.Disk.Validate(); err != nil {
		return err
	}
	if p.UnitPerDisk <= 0 || p.UnitPerDisk%int64(p.PageSize) != 0 {
		return fmt.Errorf("harness: unit %d is not a positive page multiple", p.UnitPerDisk)
	}
	if p.PrefetchDepth < 1 || p.MeasureTuples < 1 || p.FullTuples < p.MeasureTuples || p.BlockTuples < 1 {
		return fmt.Errorf("harness: invalid scale parameters %+v", p)
	}
	return nil
}

// scale is the extrapolation factor from measured to reported tuples.
func (p Params) scale() float64 {
	return float64(p.FullTuples) / float64(p.MeasureTuples)
}

// Harness owns the cached measure-phase tables and runs experiments.
type Harness struct {
	p      Params
	dir    string
	tables map[string]*store.Table // keyed by schema name + layout
}

// New prepares a harness, creating the data directory if needed.
func New(p Params) (*Harness, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	dir := p.DataDir
	if dir == "" {
		d, err := os.MkdirTemp("", "readopt-harness-")
		if err != nil {
			return nil, err
		}
		dir = d
	}
	return &Harness{p: p, dir: dir, tables: make(map[string]*store.Table)}, nil
}

// Params returns the harness configuration.
func (h *Harness) Params() Params { return h.p }

// Dir returns the data directory.
func (h *Harness) Dir() string { return h.dir }

// Table loads (or returns the cached) measure-phase table for a schema
// and layout.
func (h *Harness) Table(sch *schema.Schema, layout store.Layout) (*store.Table, error) {
	key := sch.Name + "/" + string(layout)
	if t, ok := h.tables[key]; ok {
		return t, nil
	}
	sub := filepath.Join(h.dir, sanitize(key))
	t, err := store.Open(sub)
	if err != nil {
		t, err = store.LoadSynthetic(sub, sch, layout, h.p.PageSize, h.p.Seed, h.p.MeasureTuples)
		if err != nil {
			return nil, fmt.Errorf("harness: loading %s: %w", key, err)
		}
	} else if t.Tuples != h.p.MeasureTuples {
		return nil, fmt.Errorf("harness: cached table %s has %d tuples, want %d (remove %s)",
			key, t.Tuples, h.p.MeasureTuples, sub)
	}
	h.tables[key] = t
	return t, nil
}

func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch r {
		case '/', '\\', ':', ' ':
			out = append(out, '_')
		default:
			out = append(out, r)
		}
	}
	return string(out)
}

// fullFileBytes returns the on-disk size of a stored entity at full
// scale, given its per-page tuple capacity.
func (p Params) fullFileBytes(capacity int) int64 {
	pages := (p.FullTuples + int64(capacity) - 1) / int64(capacity)
	return pages * int64(p.PageSize)
}

// rowFileBytes returns the full-scale row file size for a schema.
func (p Params) rowFileBytes(sch *schema.Schema) int64 {
	return p.fullFileBytes(page.RowGeometry(sch, p.PageSize).Capacity())
}

// colFileBytes returns the full-scale column file size for one attribute.
func (p Params) colFileBytes(sch *schema.Schema, attr int) int64 {
	return p.fullFileBytes(page.ColGeometry(sch.Attrs[attr], p.PageSize).Capacity())
}

// rowsPerColPage returns a column's per-page value capacity.
func (p Params) rowsPerColPage(sch *schema.Schema, attr int) int {
	return page.ColGeometry(sch.Attrs[attr], p.PageSize).Capacity()
}
