package exec

import (
	"fmt"

	"github.com/readoptdb/readopt/internal/cpumodel"
	"github.com/readoptdb/readopt/internal/schema"
)

// MergeJoin is the engine's equi-join over two inputs clustered on their
// integer join keys — the natural join method in a read-optimized store,
// where fact tables arrive key-sorted from the bulk loader. Duplicate keys
// on the right side are buffered so every cross pair is produced.
type MergeJoin struct {
	left, right       Operator
	leftKey, rightKey int
	out               *schema.Schema
	counters          *cpumodel.Counters
	costs             cpumodel.Costs
	block             *Block

	lBlock *Block
	lPos   int
	rBlock *Block
	rPos   int
	rDone  bool

	// group is the buffered right-side tuples sharing the current key.
	group    []byte
	groupKey int32
	groupPos int // next group element to pair with the current left tuple
	matching bool
	prevLeft int32
	leftSet  bool
}

// NewMergeJoin joins left and right on integer attributes leftKey and
// rightKey; both inputs must be non-decreasing on their keys (verified
// during execution). counters may be nil.
func NewMergeJoin(left, right Operator, leftKey, rightKey int, counters *cpumodel.Counters) (*MergeJoin, error) {
	ls, rs := left.Schema(), right.Schema()
	for _, c := range []struct {
		s *schema.Schema
		k int
	}{{ls, leftKey}, {rs, rightKey}} {
		if c.k < 0 || c.k >= c.s.NumAttrs() {
			return nil, fmt.Errorf("exec: join key %d out of range for %s", c.k, c.s.Name)
		}
		if c.s.Attrs[c.k].Type.Kind != schema.Int32 {
			return nil, fmt.Errorf("exec: join key %s is not an integer", c.s.Attrs[c.k].Name)
		}
	}
	attrs := make([]schema.Attribute, 0, ls.NumAttrs()+rs.NumAttrs())
	seen := map[string]bool{}
	add := func(prefix string, a schema.Attribute) {
		name := a.Name
		if seen[name] {
			name = prefix + "." + name
		}
		seen[name] = true
		attrs = append(attrs, schema.Attribute{Name: name, Type: a.Type})
	}
	for _, a := range ls.Attrs {
		add("L", a)
	}
	for _, a := range rs.Attrs {
		add("R", a)
	}
	out, err := schema.New(ls.Name+"⋈"+rs.Name, attrs)
	if err != nil {
		return nil, err
	}
	return &MergeJoin{
		left: left, right: right, leftKey: leftKey, rightKey: rightKey,
		out: out, counters: counters, costs: cpumodel.DefaultCosts(),
		block: NewBlock(out, DefaultBlockTuples),
	}, nil
}

// Schema implements Operator.
func (j *MergeJoin) Schema() *schema.Schema { return j.out }

// Open implements Operator.
func (j *MergeJoin) Open() error {
	if err := j.left.Open(); err != nil {
		return err
	}
	if err := j.right.Open(); err != nil {
		j.left.Close()
		return err
	}
	j.lBlock, j.lPos = nil, 0
	j.rBlock, j.rPos = nil, 0
	j.rDone = false
	j.group = j.group[:0]
	j.matching = false
	j.leftSet = false
	return nil
}

// Close implements Operator.
func (j *MergeJoin) Close() error {
	errL := j.left.Close()
	errR := j.right.Close()
	if errL != nil {
		return errL
	}
	return errR
}

// nextLeft returns the next left tuple, or nil at end of stream.
func (j *MergeJoin) nextLeft() ([]byte, error) {
	for j.lBlock == nil || j.lPos >= j.lBlock.Len() {
		b, err := j.left.Next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			return nil, nil
		}
		j.lBlock, j.lPos = b, 0
	}
	t := j.lBlock.Tuple(j.lPos)
	return t, nil
}

// peekRight returns the next right tuple without consuming it, or nil at
// end of stream.
func (j *MergeJoin) peekRight() ([]byte, error) {
	if j.rDone {
		return nil, nil
	}
	for j.rBlock == nil || j.rPos >= j.rBlock.Len() {
		b, err := j.right.Next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			j.rDone = true
			return nil, nil
		}
		j.rBlock, j.rPos = b, 0
	}
	return j.rBlock.Tuple(j.rPos), nil
}

// loadGroup buffers all right tuples with the given key into j.group.
func (j *MergeJoin) loadGroup(key int32) error {
	j.group = j.group[:0]
	rs := j.right.Schema()
	for {
		t, err := j.peekRight()
		if err != nil {
			return err
		}
		if t == nil {
			return nil
		}
		k := rs.Int32At(t, j.rightKey)
		j.counters.AddInstr(j.costs.Compare)
		if k < j.groupLowerBound() {
			return fmt.Errorf("exec: right join input not sorted on %s", rs.Attrs[j.rightKey].Name)
		}
		if k != key {
			return nil
		}
		j.group = append(j.group, t...)
		j.rPos++
	}
}

// groupLowerBound returns the smallest right key still admissible.
func (j *MergeJoin) groupLowerBound() int32 {
	if j.matching || len(j.group) > 0 {
		return j.groupKey
	}
	return -1 << 31
}

// Next implements Operator.
func (j *MergeJoin) Next() (*Block, error) {
	ls, rs := j.left.Schema(), j.right.Schema()
	rWidth := rs.Width()
	j.block.Reset()
	for !j.block.Full() {
		lt, err := j.nextLeft()
		if err != nil {
			return nil, err
		}
		if lt == nil {
			break
		}
		lk := ls.Int32At(lt, j.leftKey)
		if j.leftSet && lk < j.prevLeft {
			return nil, fmt.Errorf("exec: left join input not sorted on %s", ls.Attrs[j.leftKey].Name)
		}
		j.prevLeft, j.leftSet = lk, true

		if !j.matching || lk != j.groupKey {
			// Advance the right side to lk and buffer its group.
			j.matching = false
			for {
				rt, err := j.peekRight()
				if err != nil {
					return nil, err
				}
				if rt == nil || rs.Int32At(rt, j.rightKey) >= lk {
					break
				}
				j.counters.AddInstr(j.costs.Compare)
				j.rPos++
			}
			j.groupKey = lk
			j.matching = true
			if err := j.loadGroup(lk); err != nil {
				return nil, err
			}
			j.groupPos = 0
		}

		if len(j.group) == 0 {
			// No right partner: consume the left tuple.
			j.lPos++
			j.counters.AddInstr(j.costs.Compare)
			continue
		}
		// Emit pairs until the block fills or the group is exhausted.
		for j.groupPos*rWidth < len(j.group) && !j.block.Full() {
			dst := j.block.Alloc()
			copy(dst, lt[:ls.Width()])
			copy(dst[ls.Width():], j.group[j.groupPos*rWidth:(j.groupPos+1)*rWidth])
			j.counters.AddInstr(j.costs.Compare + int64(j.out.Width())*j.costs.CopyPerByte)
			j.groupPos++
		}
		if j.groupPos*rWidth >= len(j.group) {
			// Finished this left tuple against the whole group.
			j.lPos++
			j.groupPos = 0
		}
	}
	j.counters.AddInstr(j.costs.BlockOverhead)
	if j.block.Len() == 0 {
		return nil, nil
	}
	return j.block, nil
}
