// Package clock is the engine's single doorway to wall-clock time.
// Everything that reads or schedules against "now" — the server's
// gather window and statistics, trace timings, prefetch stall
// accounting — takes a Clock so tests drive time by hand instead of
// sleeping. The clockdiscipline analyzer (internal/lint) enforces the
// rule: package time's Now/Since/Sleep and friends are forbidden
// outside implementations marked //readopt:clock.
package clock

import "time"

// Clock is the injected view of time.
type Clock interface {
	Now() time.Time
	Sleep(d time.Duration)
}

// Real is the production Clock: the system clock.
type Real struct{}

// Now returns the current wall-clock time.
//
//readopt:clock
func (Real) Now() time.Time { return time.Now() }

// Sleep pauses the calling goroutine.
//
//readopt:clock
func (Real) Sleep(d time.Duration) { time.Sleep(d) }

// Since returns the time elapsed on c since t, the Clock-disciplined
// spelling of time.Since.
func Since(c Clock, t time.Time) time.Duration { return c.Now().Sub(t) }
