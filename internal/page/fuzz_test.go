package page

import (
	"bytes"
	"testing"

	"github.com/readoptdb/readopt/internal/compress"
	"github.com/readoptdb/readopt/internal/schema"
)

// feeder deterministically turns an arbitrary fuzz payload into tuple
// values. It cycles so short payloads still fill many tuples.
type feeder struct {
	data []byte
	i    int
}

func (f *feeder) byte() byte {
	if len(f.data) == 0 {
		return 0
	}
	b := f.data[f.i%len(f.data)]
	f.i++
	return b
}

func (f *feeder) u32() uint32 {
	return uint32(f.byte()) | uint32(f.byte())<<8 | uint32(f.byte())<<16 | uint32(f.byte())<<24
}

var fuzzStatuses = []string{"F", "O", "P"}

var fuzzPriorities = []string{
	"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECI", "5-LOW",
}

// fillFuzzTuple writes one tuple whose values stay inside the ORDERS-Z
// code domains (14-bit date, 8-bit key deltas, 2/3-bit dictionaries,
// 1-bit ship priority), so a compressed Flush must succeed and the page
// must round-trip. key threads the monotone orderkey between calls.
func fillFuzzTuple(s *schema.Schema, tuple []byte, f *feeder, key *int32) {
	s.PutInt32At(tuple, schema.OOrderDate, int32(f.u32()%(1<<14)))
	*key += int32(f.byte()) // FOR-delta wants non-decreasing, deltas ≤ 255
	s.PutInt32At(tuple, schema.OOrderKey, *key)
	s.PutInt32At(tuple, schema.OCustKey, int32(f.u32()))
	s.PutTextAt(tuple, schema.OOrderStatus, []byte(fuzzStatuses[int(f.byte())%len(fuzzStatuses)]))
	s.PutTextAt(tuple, schema.OOrderPriority, []byte(fuzzPriorities[int(f.byte())%len(fuzzPriorities)]))
	s.PutInt32At(tuple, schema.OTotalPrice, int32(f.u32()))
	s.PutInt32At(tuple, schema.OShipPriority, int32(f.byte()%2))
}

// checkCorruptCount flips the page's count header to an arbitrary value
// and decodes: a count past capacity must surface as an error, and no
// count may panic (a dictionary code past the dictionary, say, must come
// back as an error too).
func checkCorruptCount(t *testing.T, decode func(pg, dst []byte) (int, error), pg []byte, capacity, width int, corrupt uint32) {
	t.Helper()
	bad := append([]byte(nil), pg...)
	SetCount(bad, int(corrupt))
	dst := make([]byte, (capacity+1)*width)
	n, err := decode(bad, dst)
	if int(corrupt) > capacity && err == nil {
		t.Fatalf("Decode accepted corrupt count %d past capacity %d (returned %d)", corrupt, capacity, n)
	}
}

// FuzzRowPageRoundTrip drives arbitrary tuples and fill levels through
// RowBuilder/RowReader for the uncompressed and compressed ORDERS
// schemas, and checks that count-header corruption errors instead of
// panicking.
func FuzzRowPageRoundTrip(f *testing.F) {
	f.Add([]byte(nil), uint16(0), byte(0))
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, uint16(1), byte(1))
	f.Add([]byte("readopt fuzz seed: arbitrary tuple bytes"), uint16(127), byte(0))
	f.Add([]byte{0xff, 0x00, 0xaa, 0x55}, uint16(341), byte(1))
	f.Fuzz(func(t *testing.T, data []byte, n uint16, compressed byte) {
		s := schema.Orders()
		if compressed%2 == 1 {
			s = schema.OrdersZ()
		}
		dicts := map[int]*compress.Dictionary{}
		b, err := NewRowBuilder(s, DefaultSize, dicts)
		if err != nil {
			t.Fatal(err)
		}
		r, err := NewRowReader(s, DefaultSize, dicts)
		if err != nil {
			t.Fatal(err)
		}
		fd := &feeder{data: data}
		count := int(n) % (2*b.Capacity() + 1)
		tuple := make([]byte, s.Width())
		var key int32
		var want []byte
		var pages [][]byte
		for i := 0; i < count; i++ {
			if s.Compressed() {
				fillFuzzTuple(s, tuple, fd, &key)
			} else {
				// Uncompressed pages store tuples verbatim, so any bytes
				// at all must round-trip.
				for j := range tuple {
					tuple[j] = fd.byte()
				}
			}
			want = append(want, tuple...)
			b.Add(tuple)
			if b.Full() {
				pg, err := b.Flush(uint32(len(pages)))
				if err != nil {
					t.Fatal(err)
				}
				pages = append(pages, append([]byte(nil), pg...))
			}
		}
		if b.Count() > 0 {
			pg, err := b.Flush(uint32(len(pages)))
			if err != nil {
				t.Fatal(err)
			}
			pages = append(pages, append([]byte(nil), pg...))
		}
		var got []byte
		dst := make([]byte, r.Capacity()*s.Width())
		for _, pg := range pages {
			cnt, err := r.Decode(pg, dst)
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, dst[:cnt*s.Width()]...)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("%s: round trip mismatch: %d tuples in, %d bytes out", s.Name, count, len(got))
		}
		if len(pages) > 0 {
			checkCorruptCount(t, r.Decode, pages[0], r.Capacity(), s.Width(), fd.u32())
		}
	})
}

// fuzzColAttr picks the column shape under test: a plain integer, a
// bit-packed integer, a dictionary text column, or a FOR integer.
func fuzzColAttr(variant byte) schema.Attribute {
	switch variant % 4 {
	case 1:
		return schema.Attribute{Name: "V", Type: schema.IntType, Enc: schema.BitPack, Bits: 14}
	case 2:
		return schema.Attribute{Name: "V", Type: schema.TextType(11), Enc: schema.Dict, Bits: 3}
	case 3:
		return schema.Attribute{Name: "V", Type: schema.IntType, Enc: schema.FOR, Bits: 16}
	default:
		return schema.Attribute{Name: "V", Type: schema.IntType}
	}
}

// fillFuzzValue writes one column value inside the variant's code domain.
// FOR keeps values in a window whose spread fits the 16-bit code width.
func fillFuzzValue(attr schema.Attribute, dst []byte, f *feeder) {
	switch {
	case attr.Enc == schema.BitPack:
		v := f.u32() % (1 << 14)
		dst[0], dst[1], dst[2], dst[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
	case attr.Enc == schema.Dict:
		s := fuzzPriorities[int(f.byte())%len(fuzzPriorities)]
		n := copy(dst, s)
		for j := n; j < len(dst); j++ {
			dst[j] = ' '
		}
	case attr.Enc == schema.FOR:
		v := 100_000 + f.u32()%(1<<16)
		dst[0], dst[1], dst[2], dst[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
	default:
		for j := range dst {
			dst[j] = f.byte()
		}
	}
}

// FuzzColPageRoundTrip drives arbitrary values and fill levels through
// ColBuilder/ColReader for every codec shape, checks ValueAt against the
// bulk decode for random-access codecs, and checks count corruption.
func FuzzColPageRoundTrip(f *testing.F) {
	f.Add([]byte(nil), uint16(0), byte(0))
	f.Add([]byte{9, 8, 7, 6, 5}, uint16(100), byte(1))
	f.Add([]byte("column fuzz seed"), uint16(1022), byte(2))
	f.Add([]byte{0x10, 0x20, 0xfe}, uint16(500), byte(3))
	f.Fuzz(func(t *testing.T, data []byte, n uint16, variant byte) {
		attr := fuzzColAttr(variant)
		var dict *compress.Dictionary
		if attr.Enc == schema.Dict {
			dict = compress.NewDictionary(attr.Type.Size)
		}
		b, err := NewColBuilder(attr, DefaultSize, dict)
		if err != nil {
			t.Fatal(err)
		}
		r, err := NewColReader(attr, DefaultSize, dict)
		if err != nil {
			t.Fatal(err)
		}
		fd := &feeder{data: data}
		count := int(n) % (b.Capacity() + 1)
		val := make([]byte, attr.Type.Size)
		var want []byte
		for i := 0; i < count; i++ {
			fillFuzzValue(attr, val, fd)
			want = append(want, val...)
			b.Add(val)
		}
		pg, err := b.Flush(3)
		if err != nil {
			t.Fatal(err)
		}
		dst := make([]byte, r.Capacity()*attr.Type.Size)
		cnt, err := r.Decode(pg, dst)
		if err != nil {
			t.Fatal(err)
		}
		if cnt != count {
			t.Fatalf("Decode returned %d values, staged %d", cnt, count)
		}
		if !bytes.Equal(dst[:cnt*attr.Type.Size], want) {
			t.Fatalf("%s column: round trip mismatch over %d values", attr.Enc, count)
		}
		if r.RandomAccess() && count > 0 {
			at := make([]byte, attr.Type.Size)
			for _, i := range []int{0, count / 2, count - 1} {
				r.ValueAt(pg, i, at)
				if !bytes.Equal(at, want[i*attr.Type.Size:(i+1)*attr.Type.Size]) {
					t.Fatalf("ValueAt(%d) = %x, Decode said %x", i, at, want[i*attr.Type.Size:(i+1)*attr.Type.Size])
				}
			}
		}
		checkCorruptCount(t, r.Decode, pg, r.Capacity(), attr.Type.Size, fd.u32())
	})
}

// FuzzPAXPageRoundTrip drives arbitrary tuples and fill levels through
// PAXBuilder/PAXReader (whole-tuple and per-attribute decode paths) for
// the uncompressed and compressed ORDERS schemas.
func FuzzPAXPageRoundTrip(f *testing.F) {
	f.Add([]byte(nil), uint16(0), byte(0))
	f.Add([]byte{4, 4, 2, 1}, uint16(60), byte(1))
	f.Add([]byte("pax fuzz seed bytes"), uint16(127), byte(0))
	f.Add([]byte{0x01, 0xff}, uint16(200), byte(1))
	f.Fuzz(func(t *testing.T, data []byte, n uint16, compressed byte) {
		s := schema.Orders()
		if compressed%2 == 1 {
			s = schema.OrdersZ()
		}
		dicts := map[int]*compress.Dictionary{}
		b, err := NewPAXBuilder(s, DefaultSize, dicts)
		if err != nil {
			t.Fatal(err)
		}
		r, err := NewPAXReader(s, DefaultSize, dicts)
		if err != nil {
			t.Fatal(err)
		}
		fd := &feeder{data: data}
		count := int(n) % (b.Capacity() + 1)
		tuple := make([]byte, s.Width())
		var key int32
		var want []byte
		for i := 0; i < count; i++ {
			if s.Compressed() {
				fillFuzzTuple(s, tuple, fd, &key)
			} else {
				for j := range tuple {
					tuple[j] = fd.byte()
				}
			}
			want = append(want, tuple...)
			b.Add(tuple)
		}
		pg, err := b.Flush(5)
		if err != nil {
			t.Fatal(err)
		}
		dst := make([]byte, r.Capacity()*s.Width())
		cnt, err := r.Decode(pg, dst)
		if err != nil {
			t.Fatal(err)
		}
		if cnt != count {
			t.Fatalf("Decode returned %d tuples, staged %d", cnt, count)
		}
		if !bytes.Equal(dst[:cnt*s.Width()], want) {
			t.Fatalf("%s PAX: whole-tuple round trip mismatch over %d tuples", s.Name, count)
		}
		// The minipage path must agree with the whole-tuple path.
		for a := range s.Attrs {
			cnt, err := r.DecodeAttr(pg, a, dst[s.Offset(a):], s.Width())
			if err != nil {
				t.Fatal(err)
			}
			if cnt != count {
				t.Fatalf("DecodeAttr(%d) returned %d tuples, staged %d", a, cnt, count)
			}
		}
		if !bytes.Equal(dst[:count*s.Width()], want) {
			t.Fatalf("%s PAX: per-attribute decode disagrees with whole-tuple decode", s.Name)
		}
		checkCorruptCount(t, r.Decode, pg, r.Capacity(), s.Width(), fd.u32())
	})
}
