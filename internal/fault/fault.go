// Package fault is the engine's failure taxonomy and fault-injection
// layer. Every error a query can surface is classified into one of three
// kinds — transient (a retryable I/O hiccup), corrupt (the data on disk
// is wrong and retrying cannot help), cancelled (the caller gave up) —
// so the layers above (the plan's retry logic, the server's wire codes
// and /metrics counters, the trace) can react without string-matching.
//
// The package also provides the machinery that makes failure a tested
// code path instead of a theoretical one: a scripted reader for unit
// tests, a seeded deterministic fault injector usable from the chaos
// suite and the readoptd -chaos flag, and a bounded retry-with-backoff
// reader the plan layer wraps around every table section it opens.
package fault

import (
	"context"
	"errors"
	"fmt"
)

// The three sentinels of the error taxonomy. Errors carrying them are
// built with Transient, Corruptf and Cancelled and match via errors.Is;
// never compare against them with ==, wrapping makes that always false.
var (
	// ErrTransient marks an I/O error that may succeed if retried (a
	// device hiccup, a short read). The plan layer retries these with
	// backoff before letting them surface.
	ErrTransient = errors.New("fault: transient I/O error")
	// ErrCorrupt marks data that failed an integrity check — a page CRC
	// mismatch, a torn I/O unit, an impossible page header. Retrying
	// cannot help; the query must fail rather than decode wrong values.
	ErrCorrupt = errors.New("fault: data corruption")
	// ErrCancelled marks a query stopped by its context: a timeout or a
	// client disconnect, not an engine failure.
	ErrCancelled = errors.New("fault: query cancelled")
)

// Kind names an error class for counters and wire formats.
type Kind string

const (
	KindNone      Kind = ""
	KindTransient Kind = "transient"
	KindCorrupt   Kind = "corrupt"
	KindCancelled Kind = "cancelled"
	KindOther     Kind = "other"
)

// tagged pairs a taxonomy sentinel with the underlying cause so
// errors.Is matches both (Go 1.20 multi-error unwrapping).
type tagged struct {
	kind  error
	cause error
}

func (e *tagged) Error() string { return e.cause.Error() }

func (e *tagged) Unwrap() []error { return []error{e.kind, e.cause} }

// Transient tags err as retryable. A nil err returns nil.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &tagged{kind: ErrTransient, cause: err}
}

// Cancelled tags err as a cancellation. A nil err returns nil.
func Cancelled(err error) error {
	if err == nil {
		return nil
	}
	return &tagged{kind: ErrCancelled, cause: err}
}

// Corruptf builds an ErrCorrupt-tagged error from a format string.
func Corruptf(format string, args ...any) error {
	return &tagged{kind: ErrCorrupt, cause: fmt.Errorf(format, args...)}
}

// Classify maps an error onto the taxonomy. Context cancellation and
// deadline errors classify as cancelled even when they were never
// tagged, because they reach the engine raw from context.Context.
func Classify(err error) Kind {
	switch {
	case err == nil:
		return KindNone
	case errors.Is(err, ErrCancelled),
		errors.Is(err, context.Canceled),
		errors.Is(err, context.DeadlineExceeded):
		return KindCancelled
	case errors.Is(err, ErrCorrupt):
		return KindCorrupt
	case errors.Is(err, ErrTransient):
		return KindTransient
	default:
		return KindOther
	}
}
