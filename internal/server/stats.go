package server

import (
	"sync"
	"time"

	"github.com/readoptdb/readopt"
	"github.com/readoptdb/readopt/internal/cpumodel"
)

// statsRecorder accumulates the server's aggregate statistics. Handler
// outcomes (admitted/completed/failed/rejected/timed out) are counted by
// the HTTP side; dispatch shape and engine work are counted by the
// scheduler. Engine work accumulates through cpumodel.Counters, the same
// accounting the engine itself runs on.
type statsRecorder struct {
	mu sync.Mutex

	admitted, completed, failed, rejected, timedOut int64

	batches, batchedQueries, singletons int64
	maxBatch                            int64

	queueWait, exec time.Duration
	work            cpumodel.Counters
}

func (r *statsRecorder) reject() {
	r.mu.Lock()
	r.rejected++
	r.mu.Unlock()
}

func (r *statsRecorder) timeout() {
	r.mu.Lock()
	r.admitted++
	r.timedOut++
	r.mu.Unlock()
}

func (r *statsRecorder) complete() {
	r.mu.Lock()
	r.admitted++
	r.completed++
	r.mu.Unlock()
}

func (r *statsRecorder) fail() {
	r.mu.Lock()
	r.admitted++
	r.failed++
	r.mu.Unlock()
}

// ran records a singleton dispatch.
func (r *statsRecorder) ran(n int64, queueWait, exec time.Duration, work readopt.ScanStats) {
	r.mu.Lock()
	r.singletons += n
	r.queueWait += queueWait
	r.exec += exec
	r.addWorkLocked(work)
	r.mu.Unlock()
}

// ranBatch records one multi-query shared-scan dispatch.
func (r *statsRecorder) ranBatch(size int, queueWait, exec time.Duration, work readopt.ScanStats) {
	r.mu.Lock()
	r.batches++
	r.batchedQueries += int64(size)
	if int64(size) > r.maxBatch {
		r.maxBatch = int64(size)
	}
	r.queueWait += queueWait
	r.exec += exec
	r.addWorkLocked(work)
	r.mu.Unlock()
}

func (r *statsRecorder) addLatency(queueWait, exec time.Duration) {
	r.mu.Lock()
	r.queueWait += queueWait
	r.exec += exec
	r.mu.Unlock()
}

func (r *statsRecorder) addWorkLocked(work readopt.ScanStats) {
	r.work.Add(cpumodel.Counters{
		Instr:      work.Instructions,
		SeqBytes:   work.SeqMemBytes,
		RandLines:  work.RandMemLines,
		IORequests: work.IORequests,
		IOBytes:    work.IOBytes,
	})
}

func (r *statsRecorder) snapshot() readopt.ServerStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return readopt.ServerStats{
		Admitted:        r.admitted,
		Completed:       r.completed,
		Failed:          r.failed,
		Rejected:        r.rejected,
		TimedOut:        r.timedOut,
		Batches:         r.batches,
		BatchedQueries:  r.batchedQueries,
		MaxBatchSize:    r.maxBatch,
		SingletonRuns:   r.singletons,
		QueueWaitMicros: r.queueWait.Microseconds(),
		ExecMicros:      r.exec.Microseconds(),
		Work: readopt.ScanStats{
			Instructions: r.work.Instr,
			SeqMemBytes:  r.work.SeqBytes,
			RandMemLines: r.work.RandLines,
			IORequests:   r.work.IORequests,
			IOBytes:      r.work.IOBytes,
		},
	}
}
