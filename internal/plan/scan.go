package plan

import (
	"os"

	"github.com/readoptdb/readopt/internal/aio"
	"github.com/readoptdb/readopt/internal/cpumodel"
	"github.com/readoptdb/readopt/internal/exec"
	"github.com/readoptdb/readopt/internal/page"
	"github.com/readoptdb/readopt/internal/scan"
	"github.com/readoptdb/readopt/internal/store"
	"github.com/readoptdb/readopt/internal/trace"
)

// ioUnit and ioDepth are the engine defaults: a 128KB I/O unit with a
// 48-unit prefetch window, the paper's configuration.
const (
	ioUnit  = 128 << 10
	ioDepth = 48
)

// tableReader wires a data file behind the prefetching OS reader.
type tableReader struct {
	*aio.OSReader
	f *os.File
}

func (r *tableReader) Close() error {
	err := r.OSReader.Close()
	if cerr := r.f.Close(); err == nil {
		err = cerr
	}
	return err
}

func openReader(path string) (aio.Reader, error) {
	return openSection(path, 0, -1)
}

// openSection opens a page-aligned byte range of a data file behind the
// prefetching reader; a negative length reads to the end of the file.
func openSection(path string, off, length int64) (aio.Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	r, err := aio.NewOSReaderSection(f, ioUnit, ioDepth, off, length)
	if err != nil {
		f.Close()
		return nil, err
	}
	return &tableReader{OSReader: r, f: f}, nil
}

// addReader registers a reader's statistics with the trace, so prefetch
// behaviour is snapshotted when the query finishes.
func addReader(tr *trace.Trace, r aio.Reader) {
	if tr == nil {
		return
	}
	if rs, ok := r.(trace.ReaderStats); ok {
		tr.AddReader(rs)
	}
}

// scanOperator builds the full-table physical scan. A non-nil tr
// registers the scan's I/O readers with the trace.
func (p *Plan) scanOperator(counters *cpumodel.Counters, tr *trace.Trace) (exec.Operator, error) {
	t := p.tbl
	if t.Layout == store.Row || t.Layout == store.PAX {
		reader, err := openReader(t.DataPath())
		if err != nil {
			return nil, err
		}
		addReader(tr, reader)
		cfg := scan.RowConfig{
			Schema:   t.Schema,
			PageSize: t.PageSize,
			Reader:   reader,
			Dicts:    t.Dicts,
			Preds:    p.spec.Preds,
			Proj:     p.spec.Proj,
			Counters: counters,
		}
		var op exec.Operator
		if t.Layout == store.PAX {
			op, err = scan.NewPAXScanner(cfg)
		} else {
			op, err = scan.NewRowScanner(cfg)
		}
		if err != nil {
			reader.Close()
			return nil, err
		}
		return op, nil
	}
	readers, err := p.openColumnReaders(tr, func(int64) (int64, int64) { return 0, -1 })
	if err != nil {
		return nil, err
	}
	op, err := scan.NewColScanner(scan.ColConfig{
		Schema:   t.Schema,
		PageSize: t.PageSize,
		Readers:  readers,
		Dicts:    t.Dicts,
		Preds:    p.spec.Preds,
		Proj:     p.spec.Proj,
		Counters: counters,
	})
	if err != nil {
		for _, r := range readers {
			r.Close()
		}
		return nil, err
	}
	return op, nil
}

// scanRange builds the physical scan for the row range [startRow,
// endRow) — one parallel worker's morsel source.
func (p *Plan) scanRange(counters *cpumodel.Counters, tr *trace.Trace, startRow, endRow int64) (exec.Operator, error) {
	t := p.tbl
	if t.Layout == store.Row || t.Layout == store.PAX {
		// Page-aligned partition: slice the single data file by pages and
		// run the ordinary scanner over the section.
		capacity := int64(page.RowGeometry(t.Schema, t.PageSize).Capacity())
		startPage := startRow / capacity
		endPage := (endRow + capacity - 1) / capacity
		reader, err := openSection(t.DataPath(), startPage*int64(t.PageSize), (endPage-startPage)*int64(t.PageSize))
		if err != nil {
			return nil, err
		}
		addReader(tr, reader)
		cfg := scan.RowConfig{
			Schema:   t.Schema,
			PageSize: t.PageSize,
			Reader:   reader,
			Dicts:    t.Dicts,
			Preds:    p.spec.Preds,
			Proj:     p.spec.Proj,
			Counters: counters,
		}
		var op exec.Operator
		if t.Layout == store.PAX {
			op, err = scan.NewPAXScanner(cfg)
		} else {
			op, err = scan.NewRowScanner(cfg)
		}
		if err != nil {
			reader.Close()
			return nil, err
		}
		return op, nil
	}

	// Column layout: every needed column streams from the page containing
	// startRow; the scanner trims to the exact row range.
	readers, err := p.openColumnReaders(tr, func(attrCap int64) (int64, int64) {
		startPage := startRow / attrCap
		endPage := (endRow + attrCap - 1) / attrCap
		return startPage * int64(t.PageSize), (endPage - startPage) * int64(t.PageSize)
	})
	if err != nil {
		return nil, err
	}
	op, err := scan.NewColScanner(scan.ColConfig{
		Schema:   t.Schema,
		PageSize: t.PageSize,
		Readers:  readers,
		Dicts:    t.Dicts,
		Preds:    p.spec.Preds,
		Proj:     p.spec.Proj,
		Counters: counters,
		StartRow: startRow,
		EndRow:   endRow,
	})
	if err != nil {
		for _, r := range readers {
			r.Close()
		}
		return nil, err
	}
	return op, nil
}

// openColumnReaders opens one reader per column the scan touches.
// section maps a column's page capacity to its (offset, length) file
// section; the full-table scan uses (0, -1).
func (p *Plan) openColumnReaders(tr *trace.Trace, section func(attrCap int64) (int64, int64)) (map[int]aio.Reader, error) {
	t := p.tbl
	need := map[int]bool{}
	for _, pr := range p.spec.Preds {
		need[pr.Attr] = true
	}
	for _, a := range p.spec.Proj {
		need[a] = true
	}
	readers := map[int]aio.Reader{}
	for a := range need {
		capacity := int64(page.ColGeometry(t.Schema.Attrs[a], t.PageSize).Capacity())
		off, length := section(capacity)
		r, err := openSection(t.ColumnPath(a), off, length)
		if err != nil {
			for _, open := range readers {
				open.Close()
			}
			return nil, err
		}
		addReader(tr, r)
		readers[a] = r
	}
	return readers, nil
}
