// Quickstart: load the paper's ORDERS table in both physical layouts,
// run the same selection query against each, and compare the I/O they
// perform — the core tradeoff the library exists to study.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"github.com/readoptdb/readopt"
)

func main() {
	dir, err := os.MkdirTemp("", "readopt-quickstart-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	const rows = 500_000
	fmt.Printf("loading ORDERS (%d rows) as a row store and as a column store...\n", rows)
	rowTable, err := readopt.GenerateTPCH(filepath.Join(dir, "row"), readopt.Orders(), readopt.RowLayout, rows, 1, readopt.LoadOptions{})
	if err != nil {
		log.Fatal(err)
	}
	colTable, err := readopt.GenerateTPCH(filepath.Join(dir, "col"), readopt.Orders(), readopt.ColumnLayout, rows, 1, readopt.LoadOptions{})
	if err != nil {
		log.Fatal(err)
	}

	// The paper's query shape: select a few columns, filter the first
	// attribute at 10% selectivity, aggregate.
	threshold, err := rowTable.SelectivityThreshold(0.10)
	if err != nil {
		log.Fatal(err)
	}
	query := readopt.Query{
		Where: []readopt.Cond{{Column: "O_ORDERDATE", Op: "<", Value: threshold}},
		// Aggregates are 32-bit (the engine's arithmetic is integer-only,
		// like the paper's); avg/min/max stay in range where a 500k-row
		// sum would not.
		Aggs: []readopt.Agg{
			{Func: "count"},
			{Func: "avg", Column: "O_TOTALPRICE"},
			{Func: "max", Column: "O_TOTALPRICE"},
		},
	}

	for _, tbl := range []*readopt.Table{rowTable, colTable} {
		start := time.Now()
		rows, err := tbl.Query(query)
		if err != nil {
			log.Fatal(err)
		}
		if !rows.Next() {
			log.Fatal("no result row")
		}
		var count, avg, max int
		if err := rows.Scan(&count, &avg, &max); err != nil {
			log.Fatal(err)
		}
		stats := rows.Stats()
		rows.Close()
		fmt.Printf("\n%s layout:\n", tbl.Layout())
		fmt.Printf("  qualifying orders: %d, avg(price)=%d, max(price)=%d\n", count, avg, max)
		fmt.Printf("  wall time: %v\n", time.Since(start).Round(time.Millisecond))
		fmt.Printf("  bytes read: %d (table holds %d)\n", stats.IOBytes, tbl.DataBytes())
	}

	fmt.Println("\nThe column store read only the three columns the query touches;")
	fmt.Println("the row store had to read every byte of the table.")
}
