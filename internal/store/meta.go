// Package store implements the read-optimized store of the paper's
// Figure 1: the on-disk layout of tables (dense-packed pages stored
// adjacently in files — a single file for row tables, one file per column
// for column tables), table metadata, bulk loaders, and the
// write-optimized staging store whose contents are periodically merged
// into the read store.
package store

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"github.com/readoptdb/readopt/internal/compress"
	"github.com/readoptdb/readopt/internal/fault"
	"github.com/readoptdb/readopt/internal/schema"
)

// Layout distinguishes the two physical designs under study.
type Layout string

const (
	// Row stores entire tuples together, in a single file.
	Row Layout = "row"
	// Column vertically partitions the table into one file per column.
	Column Layout = "column"
	// PAX stores entire tuples per page like Row, but organizes each
	// page column-major (per-attribute minipages): row-store I/O with
	// column-store cache behaviour.
	PAX Layout = "pax"
)

// metaFile, dictFile and rowFile name the fixed files of a table
// directory.
const (
	metaFile = "meta.json"
	dictFile = "dict.bin"
	rowFile  = "table.row"
	paxFile  = "table.pax"
)

// attrMeta is the serialized form of a schema attribute.
type attrMeta struct {
	Name string `json:"name"`
	Kind string `json:"kind"`
	Size int    `json:"size"`
	Enc  string `json:"enc,omitempty"`
	Bits int    `json:"bits,omitempty"`
}

// Meta is the table metadata persisted as meta.json in the table
// directory.
type Meta struct {
	Table    string     `json:"table"`
	Layout   Layout     `json:"layout"`
	PageSize int        `json:"page_size"`
	Tuples   int64      `json:"tuples"`
	Attrs    []attrMeta `json:"attrs"`
	// FileSizes records the byte size of every data file at load time,
	// keyed by file name, and is verified when the table is opened.
	FileSizes map[string]int64 `json:"file_sizes"`
	// Checksums records the CRC-32 of every data file at load time;
	// Table.VerifyIntegrity checks them on demand.
	Checksums map[string]uint32 `json:"checksums,omitempty"`
	// PageCRC marks tables whose data files have per-page CRC-32
	// sidecars (<file>.crc), letting scans verify each page as it is
	// decoded. Tables written before sidecars existed scan unchecked.
	PageCRC bool `json:"page_crc,omitempty"`
	// Zones holds per-page min/max zone maps for every int32 attribute,
	// keyed by data file name (one entry per column file for the column
	// layout; every int32 attribute under the single file for Row and
	// PAX). Tables written before zone maps existed scan unpruned.
	Zones map[string][]ZoneMap `json:"zones,omitempty"`
}

// SidecarName returns the per-page checksum sidecar for a data file.
// The write path's run files use the same convention, so fsck and the
// chaos tooling treat every page-structured file uniformly.
func SidecarName(name string) string { return name + ".crc" }

// sidecarName is the package-internal spelling.
func sidecarName(name string) string { return SidecarName(name) }

var encByName = map[string]schema.Encoding{
	"": schema.None, "raw": schema.None, "pack": schema.BitPack,
	"dict": schema.Dict, "for": schema.FOR, "delta": schema.FORDelta,
}

func schemaToMeta(s *schema.Schema) []attrMeta {
	attrs := make([]attrMeta, s.NumAttrs())
	for i, a := range s.Attrs {
		m := attrMeta{Name: a.Name, Kind: a.Type.Kind.String(), Size: a.Type.Size}
		if a.Enc != schema.None {
			m.Enc = a.Enc.String()
			m.Bits = a.Bits
		}
		attrs[i] = m
	}
	return attrs
}

func metaToSchema(name string, attrs []attrMeta) (*schema.Schema, error) {
	out := make([]schema.Attribute, len(attrs))
	for i, m := range attrs {
		var t schema.Type
		switch m.Kind {
		case "int32":
			t = schema.IntType
		case "text":
			t = schema.TextType(m.Size)
		default:
			return nil, fmt.Errorf("store: unknown attribute kind %q", m.Kind)
		}
		enc, ok := encByName[m.Enc]
		if !ok {
			return nil, fmt.Errorf("store: unknown encoding %q", m.Enc)
		}
		out[i] = schema.Attribute{Name: m.Name, Type: t, Enc: enc, Bits: m.Bits}
	}
	return schema.New(name, out)
}

// ColumnFileName returns the data file name of column i of a schema.
func ColumnFileName(s *schema.Schema, i int) string {
	return fmt.Sprintf("col.%02d.%s", i, s.Attrs[i].Name)
}

func writeMeta(dir string, m *Meta) error {
	blob, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("store: encoding metadata: %w", err)
	}
	return os.WriteFile(filepath.Join(dir, metaFile), append(blob, '\n'), 0o644)
}

func writeDicts(dir string, s *schema.Schema, dicts map[int]*compress.Dictionary) error {
	var blob []byte
	for i := range s.Attrs {
		if s.Attrs[i].Enc != schema.Dict {
			continue
		}
		d := dicts[i]
		if d == nil {
			return fmt.Errorf("store: missing dictionary for attribute %s", s.Attrs[i].Name)
		}
		blob = d.AppendBinary(blob)
	}
	if blob == nil {
		return nil
	}
	return os.WriteFile(filepath.Join(dir, dictFile), blob, 0o644)
}

func readDicts(dir string, s *schema.Schema) (map[int]*compress.Dictionary, error) {
	dicts := make(map[int]*compress.Dictionary)
	needs := false
	for _, a := range s.Attrs {
		if a.Enc == schema.Dict {
			needs = true
			break
		}
	}
	if !needs {
		return dicts, nil
	}
	blob, err := os.ReadFile(filepath.Join(dir, dictFile))
	if err != nil {
		return nil, fmt.Errorf("store: reading dictionaries: %w", err)
	}
	off := 0
	for i := range s.Attrs {
		if s.Attrs[i].Enc != schema.Dict {
			continue
		}
		d, n, err := compress.DecodeDictionary(blob[off:])
		if err != nil {
			return nil, fmt.Errorf("store: dictionary for %s: %w", s.Attrs[i].Name, err)
		}
		dicts[i] = d
		off += n
	}
	if off != len(blob) {
		return nil, fmt.Errorf("store: %d trailing bytes in dictionary file", len(blob)-off)
	}
	return dicts, nil
}

// Table is an opened read-optimized table.
type Table struct {
	Dir      string
	Schema   *schema.Schema
	Layout   Layout
	PageSize int
	Tuples   int64
	Dicts    map[int]*compress.Dictionary

	fileSizes map[string]int64
	checksums map[string]uint32
	pageSums  map[string][]uint32
	zones     map[string][]ZoneMap
}

// Open loads a table's metadata and dictionaries and verifies the data
// files are present with their recorded sizes.
func Open(dir string) (*Table, error) {
	blob, err := os.ReadFile(filepath.Join(dir, metaFile))
	if err != nil {
		return nil, fmt.Errorf("store: opening table: %w", err)
	}
	var m Meta
	if err := json.Unmarshal(blob, &m); err != nil {
		return nil, fmt.Errorf("store: parsing metadata: %w", err)
	}
	if m.Layout != Row && m.Layout != Column && m.Layout != PAX {
		return nil, fmt.Errorf("store: unknown layout %q", m.Layout)
	}
	if m.PageSize <= 0 || m.Tuples < 0 {
		return nil, fmt.Errorf("store: corrupt metadata: page size %d, tuples %d", m.PageSize, m.Tuples)
	}
	sch, err := metaToSchema(m.Table, m.Attrs)
	if err != nil {
		return nil, err
	}
	dicts, err := readDicts(dir, sch)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Dir:       dir,
		Schema:    sch,
		Layout:    m.Layout,
		PageSize:  m.PageSize,
		Tuples:    m.Tuples,
		Dicts:     dicts,
		fileSizes: m.FileSizes,
		checksums: m.Checksums,
	}
	if len(m.Zones) > 0 {
		if err := checkZoneLengths(&m); err != nil {
			return nil, err
		}
		t.zones = m.Zones
	}
	for name, want := range m.FileSizes {
		fi, err := os.Stat(filepath.Join(dir, name))
		if err != nil {
			return nil, fmt.Errorf("store: missing data file: %w", err)
		}
		if fi.Size() != want {
			return nil, fmt.Errorf("store: data file %s is %d bytes, metadata records %d", name, fi.Size(), want)
		}
	}
	if m.PageCRC {
		t.pageSums = make(map[string][]uint32, len(m.FileSizes))
		for name, size := range m.FileSizes {
			sums, err := readPageSums(dir, name, size, m.PageSize)
			if err != nil {
				return nil, err
			}
			t.pageSums[name] = sums
		}
	}
	return t, nil
}

// readPageSums loads a data file's checksum sidecar and checks it holds
// exactly one entry per page.
func readPageSums(dir, name string, size int64, pageSize int) ([]uint32, error) {
	return ReadPageSums(dir, name, size, pageSize)
}

// ReadPageSums loads the checksum sidecar of a page-structured file and
// checks it holds exactly one entry per page of the given size. The
// write path's run files share the sidecar format with table data files.
func ReadPageSums(dir, name string, size int64, pageSize int) ([]uint32, error) {
	blob, err := os.ReadFile(filepath.Join(dir, sidecarName(name)))
	if err != nil {
		return nil, fmt.Errorf("store: reading page checksums: %w", err)
	}
	pages := size / int64(pageSize)
	if int64(len(blob)) != 4*pages {
		return nil, fmt.Errorf("store: checksum sidecar for %s holds %d bytes, want %d (%d pages)",
			name, len(blob), 4*pages, pages)
	}
	sums := make([]uint32, pages)
	for i := range sums {
		sums[i] = binary.LittleEndian.Uint32(blob[i*4:])
	}
	return sums, nil
}

// WritePageSums records per-page CRCs in the sidecar next to the named
// data file: a bare little-endian uint32 array, one entry per page.
func WritePageSums(dir, name string, sums []uint32) error {
	buf := make([]byte, 4*len(sums))
	for i, c := range sums {
		binary.LittleEndian.PutUint32(buf[i*4:], c)
	}
	return os.WriteFile(filepath.Join(dir, sidecarName(name)), buf, 0o644)
}

// VerifyPagesFile re-reads a page-structured file page by page and
// checks each against its sidecar CRC, returning the first mismatch
// (tagged fault.ErrCorrupt) with its page index. It is the shared body
// of Table.VerifyPages and the write path's run-file fsck.
func VerifyPagesFile(path string, pageSize int, sums []uint32) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("store: verify pages %s: %w", filepath.Base(path), err)
	}
	defer f.Close()
	buf := make([]byte, pageSize)
	for i, want := range sums {
		if _, err := io.ReadFull(f, buf); err != nil {
			return fmt.Errorf("store: verify pages %s: page %d: %w", filepath.Base(path), i, err)
		}
		if got := crc32.ChecksumIEEE(buf); got != want {
			return fault.Corruptf("store: data file %s page %d is corrupt: crc %08x, recorded %08x",
				filepath.Base(path), i, got, want)
		}
	}
	return nil
}

// PageChecksums returns the per-page CRCs of the named data file, or nil
// for tables written before sidecars existed. The slice is shared — do
// not mutate it.
func (t *Table) PageChecksums(name string) []uint32 { return t.pageSums[name] }

// RowPath returns the row data file path. It panics for column tables.
func (t *Table) RowPath() string {
	if t.Layout != Row {
		panic("store: RowPath on column table")
	}
	return filepath.Join(t.Dir, rowFile)
}

// PAXPath returns the PAX data file path. It panics for other layouts.
func (t *Table) PAXPath() string {
	if t.Layout != PAX {
		panic("store: PAXPath on non-PAX table")
	}
	return filepath.Join(t.Dir, paxFile)
}

// DataPath returns the single data file of a Row or PAX table.
func (t *Table) DataPath() string {
	switch t.Layout {
	case Row:
		return t.RowPath()
	case PAX:
		return t.PAXPath()
	default:
		panic("store: DataPath on column table")
	}
}

// ColumnPath returns the data file path of column i. It panics for row
// tables.
func (t *Table) ColumnPath(i int) string {
	if t.Layout != Column {
		panic("store: ColumnPath on row table")
	}
	return filepath.Join(t.Dir, ColumnFileName(t.Schema, i))
}

// DataFileSize returns the recorded size of the named data file.
func (t *Table) DataFileSize(name string) (int64, bool) {
	n, ok := t.fileSizes[name]
	return n, ok
}

// VerifyIntegrity re-reads every data file and checks its CRC-32 against
// the checksum recorded at load time, returning the first corruption
// found. Tables written before checksums existed verify trivially.
func (t *Table) VerifyIntegrity() error {
	for name, want := range t.checksums {
		f, err := os.Open(filepath.Join(t.Dir, name))
		if err != nil {
			return fmt.Errorf("store: verify %s: %w", name, err)
		}
		h := crc32.NewIEEE()
		_, err = io.Copy(h, f)
		f.Close()
		if err != nil {
			return fmt.Errorf("store: verify %s: %w", name, err)
		}
		if h.Sum32() != want {
			return fault.Corruptf("store: data file %s is corrupt: crc %08x, recorded %08x", name, h.Sum32(), want)
		}
	}
	return nil
}

// VerifyPages re-reads every data file page by page and checks each
// against its sidecar CRC, returning the first mismatch with its page
// index — the granularity VerifyIntegrity's whole-file checksum cannot
// give. Tables without sidecars verify trivially.
func (t *Table) VerifyPages() error {
	for name, sums := range t.pageSums {
		if err := VerifyPagesFile(filepath.Join(t.Dir, name), t.PageSize, sums); err != nil {
			return err
		}
	}
	return nil
}

// Fsck is the full offline integrity check behind readoptd -fsck: the
// whole-file checksums, the per-page sidecars, then the zone maps
// recomputed from decoded pages. Corruption findings carry
// fault.ErrCorrupt.
func (t *Table) Fsck() error {
	if err := t.VerifyIntegrity(); err != nil {
		return err
	}
	if err := t.VerifyPages(); err != nil {
		return err
	}
	return t.VerifyZones()
}

// TotalDataBytes returns the combined size of all data files — the
// quantity a full-table scan must read.
func (t *Table) TotalDataBytes() int64 {
	var total int64
	for _, n := range t.fileSizes {
		total += n
	}
	return total
}
