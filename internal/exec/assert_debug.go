//go:build readoptdebug

package exec

import "fmt"

// assertBlockLen panics when a block's length has escaped its capacity —
// the invariant that makes reusing one block across Next calls safe.
// This build verifies it at run time; release builds compile it out.
func assertBlockLen(b *Block) {
	if b.n < 0 || b.n*b.width > len(b.data) {
		panic(fmt.Sprintf("exec: block length %d outside capacity %d", b.n, b.Cap()))
	}
}

// assertTupleIndex panics when tuple i does not exist in b.
func assertTupleIndex(b *Block, i int) {
	if i < 0 || i >= b.n {
		panic(fmt.Sprintf("exec: tuple index %d outside block of %d", i, b.n))
	}
}
