package readopt

// Benchmarks: one per table/figure of the paper's evaluation (each
// iteration runs a representative experiment cell end to end — real
// measured scan plus full-scale replay — and reports the modelled
// elapsed seconds as metrics), plus real-engine throughput benchmarks and
// the ablations called out in DESIGN.md.
//
//	go test -bench=. -benchmem

import (
	"os"
	"path/filepath"
	"sync"
	"testing"

	"github.com/readoptdb/readopt/internal/aio"
	"github.com/readoptdb/readopt/internal/cpumodel"
	"github.com/readoptdb/readopt/internal/exec"
	"github.com/readoptdb/readopt/internal/harness"
	"github.com/readoptdb/readopt/internal/model"
	"github.com/readoptdb/readopt/internal/scan"
	"github.com/readoptdb/readopt/internal/schema"
	"github.com/readoptdb/readopt/internal/share"
	"github.com/readoptdb/readopt/internal/store"
	"github.com/readoptdb/readopt/internal/tpch"
)

var (
	benchOnce sync.Once
	benchH    *harness.Harness
	benchErr  error
)

// benchHarness shares one harness (and its cached tables) across all
// benchmarks.
func benchHarness(b *testing.B) *harness.Harness {
	b.Helper()
	benchOnce.Do(func() {
		p := harness.DefaultParams()
		p.MeasureTuples = 100_000
		dir, err := os.MkdirTemp("", "readopt-bench-")
		if err != nil {
			benchErr = err
			return
		}
		p.DataDir = dir
		benchH, benchErr = harness.New(p)
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchH
}

// runCell benchmarks one experiment cell and reports its modelled times.
func runCell(b *testing.B, sys harness.System, sch *schema.Schema, q harness.Query, opts harness.RunOpts) {
	b.Helper()
	h := benchHarness(b)
	var pt harness.Point
	var err error
	for i := 0; i < b.N; i++ {
		pt, err = h.RunScan(sys, sch, q, opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(pt.ElapsedSec, "modelled-s")
	b.ReportMetric(pt.CPU.Total(), "modelled-cpu-s")
}

// BenchmarkFig2SpeedupContour regenerates the Figure 2 grid from the
// analytical model.
func BenchmarkFig2SpeedupContour(b *testing.B) {
	var cells []model.Figure2Cell
	var err error
	for i := 0; i < b.N; i++ {
		cells, err = model.Figure2(cpumodel.Paper2006(), cpumodel.DefaultCosts())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(cells)), "cells")
}

// BenchmarkFig6Baseline runs the baseline experiment's half-projection
// cell for both systems.
func BenchmarkFig6Baseline(b *testing.B) {
	q := harness.Query{AttrsSelected: 8, Selectivity: 0.10}
	b.Run("row", func(b *testing.B) { runCell(b, harness.RowSystem, schema.Lineitem(), q, harness.RunOpts{}) })
	b.Run("column", func(b *testing.B) { runCell(b, harness.ColumnSystem, schema.Lineitem(), q, harness.RunOpts{}) })
}

// BenchmarkFig7LowSelectivity runs the 0.1% selectivity cell.
func BenchmarkFig7LowSelectivity(b *testing.B) {
	q := harness.Query{AttrsSelected: 16, Selectivity: 0.001}
	b.Run("column", func(b *testing.B) { runCell(b, harness.ColumnSystem, schema.Lineitem(), q, harness.RunOpts{}) })
}

// BenchmarkFig8NarrowTuples runs the ORDERS full-projection cell.
func BenchmarkFig8NarrowTuples(b *testing.B) {
	q := harness.Query{AttrsSelected: 7, Selectivity: 0.10}
	b.Run("row", func(b *testing.B) { runCell(b, harness.RowSystem, schema.Orders(), q, harness.RunOpts{}) })
	b.Run("column", func(b *testing.B) { runCell(b, harness.ColumnSystem, schema.Orders(), q, harness.RunOpts{}) })
}

// BenchmarkFig9Compression runs the compressed ORDERS-Z cells under both
// key encodings.
func BenchmarkFig9Compression(b *testing.B) {
	q := harness.Query{AttrsSelected: 7, Selectivity: 0.10}
	b.Run("for-delta", func(b *testing.B) { runCell(b, harness.ColumnSystem, schema.OrdersZ(), q, harness.RunOpts{}) })
	b.Run("for", func(b *testing.B) { runCell(b, harness.ColumnSystem, schema.OrdersZFOR(), q, harness.RunOpts{}) })
}

// BenchmarkFig10Prefetch sweeps the prefetch depth.
func BenchmarkFig10Prefetch(b *testing.B) {
	q := harness.Query{AttrsSelected: 7, Selectivity: 0.10}
	for _, d := range []int{2, 8, 48} {
		d := d
		b.Run("depth-"+itoa(d), func(b *testing.B) {
			runCell(b, harness.ColumnSystem, schema.Orders(), q, harness.RunOpts{Depth: d})
		})
	}
}

// BenchmarkFig11Competition runs the competing-scan cells.
func BenchmarkFig11Competition(b *testing.B) {
	q := harness.Query{AttrsSelected: 7, Selectivity: 0.10}
	opts := harness.RunOpts{Depth: 48, CompeteLineitem: true}
	b.Run("row", func(b *testing.B) { runCell(b, harness.RowSystem, schema.Orders(), q, opts) })
	b.Run("column", func(b *testing.B) { runCell(b, harness.ColumnSystem, schema.Orders(), q, opts) })
	b.Run("column-slow", func(b *testing.B) { runCell(b, harness.ColumnSlow, schema.Orders(), q, opts) })
}

// BenchmarkTable1Trends derives the trend table.
func BenchmarkTable1Trends(b *testing.B) {
	h := benchHarness(b)
	for i := 0; i < b.N; i++ {
		if _, err := h.Table1(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Real-engine throughput benchmarks -------------------------------

// benchTables lazily loads real tables for engine benchmarks.
var (
	benchTblOnce sync.Once
	benchTblRow  *store.Table
	benchTblCol  *store.Table
	benchTblErr  error
)

const benchRows = 200_000

func benchTables(b *testing.B) (*store.Table, *store.Table) {
	b.Helper()
	benchTblOnce.Do(func() {
		dir, err := os.MkdirTemp("", "readopt-bench-tbl-")
		if err != nil {
			benchTblErr = err
			return
		}
		benchTblRow, benchTblErr = store.LoadSynthetic(filepath.Join(dir, "row"), schema.Orders(), store.Row, 4096, 1, benchRows)
		if benchTblErr != nil {
			return
		}
		benchTblCol, benchTblErr = store.LoadSynthetic(filepath.Join(dir, "col"), schema.Orders(), store.Column, 4096, 1, benchRows)
	})
	if benchTblErr != nil {
		b.Fatal(benchTblErr)
	}
	return benchTblRow, benchTblCol
}

func benchOpen(b *testing.B, path string) aio.Reader {
	b.Helper()
	f, err := os.Open(path)
	if err != nil {
		b.Fatal(err)
	}
	r, err := aio.NewOSReader(f, 128<<10, 16)
	if err != nil {
		b.Fatal(err)
	}
	return r
}

func benchPred(b *testing.B, sch *schema.Schema, sel float64) []exec.Predicate {
	b.Helper()
	th, err := tpch.Threshold(sch, sel)
	if err != nil {
		b.Fatal(err)
	}
	return []exec.Predicate{exec.IntPred(0, exec.Lt, th)}
}

// BenchmarkRowScanEngine measures the real row scanner's throughput on
// this machine.
func BenchmarkRowScanEngine(b *testing.B) {
	row, _ := benchTables(b)
	b.SetBytes(benchRows * 32)
	for i := 0; i < b.N; i++ {
		s, err := scan.NewRowScanner(scan.RowConfig{
			Schema:   row.Schema,
			PageSize: row.PageSize,
			Reader:   benchOpen(b, row.RowPath()),
			Preds:    benchPred(b, row.Schema, 0.10),
			Proj:     []int{0, 5},
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := exec.Drain(s); err != nil {
			b.Fatal(err)
		}
	}
}

// benchColScan builds a column scan over the benchmark table.
func benchColConfig(b *testing.B, col *store.Table, proj []int, sel float64) scan.ColConfig {
	b.Helper()
	preds := benchPred(b, col.Schema, sel)
	readers := map[int]aio.Reader{}
	need := map[int]bool{0: true}
	for _, a := range proj {
		need[a] = true
	}
	for a := range need {
		readers[a] = benchOpen(b, col.ColumnPath(a))
	}
	return scan.ColConfig{
		Schema:   col.Schema,
		PageSize: col.PageSize,
		Readers:  readers,
		Preds:    preds,
		Proj:     proj,
	}
}

// BenchmarkColumnScanEngine measures the real pipelined column scanner.
func BenchmarkColumnScanEngine(b *testing.B) {
	_, col := benchTables(b)
	b.SetBytes(benchRows * 8) // two selected int columns
	for i := 0; i < b.N; i++ {
		s, err := scan.NewColScanner(benchColConfig(b, col, []int{0, 5}, 0.10))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := exec.Drain(s); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations (DESIGN.md section 5) ----------------------------------

// BenchmarkAblationScanners compares the three column-access strategies
// on identical queries: the paper's pipelined scanner, the
// single-iterator (PAX-style) variant, and the row scanner as baseline.
func BenchmarkAblationScanners(b *testing.B) {
	row, col := benchTables(b)
	proj := []int{0, 2, 5}
	b.Run("pipelined", func(b *testing.B) {
		b.SetBytes(benchRows * 12)
		for i := 0; i < b.N; i++ {
			s, err := scan.NewColScanner(benchColConfig(b, col, proj, 0.10))
			if err != nil {
				b.Fatal(err)
			}
			if _, err := exec.Drain(s); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("single-iterator", func(b *testing.B) {
		b.SetBytes(benchRows * 12)
		for i := 0; i < b.N; i++ {
			s, err := scan.NewSingleIterScanner(benchColConfig(b, col, proj, 0.10))
			if err != nil {
				b.Fatal(err)
			}
			if _, err := exec.Drain(s); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("row", func(b *testing.B) {
		b.SetBytes(benchRows * 32)
		for i := 0; i < b.N; i++ {
			s, err := scan.NewRowScanner(scan.RowConfig{
				Schema:   row.Schema,
				PageSize: row.PageSize,
				Reader:   benchOpen(b, row.RowPath()),
				Preds:    benchPred(b, row.Schema, 0.10),
				Proj:     proj,
			})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := exec.Drain(s); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationBlockSize varies the tuple-block size around the
// paper's L1-sized choice of 100.
func BenchmarkAblationBlockSize(b *testing.B) {
	_, col := benchTables(b)
	for _, bt := range []int{10, 100, 1000} {
		bt := bt
		b.Run("block-"+itoa(bt), func(b *testing.B) {
			b.SetBytes(benchRows * 8)
			for i := 0; i < b.N; i++ {
				cfg := benchColConfig(b, col, []int{0, 5}, 0.10)
				cfg.BlockTuples = bt
				s, err := scan.NewColScanner(cfg)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := exec.Drain(s); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationPushdown compares evaluating the predicate inside the
// scan (pushed to the deepest node) against filtering above the scan.
func BenchmarkAblationPushdown(b *testing.B) {
	_, col := benchTables(b)
	b.Run("pushed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s, err := scan.NewColScanner(benchColConfig(b, col, []int{0, 5}, 0.10))
			if err != nil {
				b.Fatal(err)
			}
			if _, err := exec.Drain(s); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("filter-above", func(b *testing.B) {
		th, _ := tpch.Threshold(col.Schema, 0.10)
		for i := 0; i < b.N; i++ {
			cfg := benchColConfig(b, col, []int{0, 5}, 1.0)
			cfg.Preds = nil
			s, err := scan.NewColScanner(cfg)
			if err != nil {
				b.Fatal(err)
			}
			f, err := exec.NewFilter(s, []exec.Predicate{exec.IntPred(0, exec.Lt, th)}, nil)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := exec.Drain(f); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationCodecs measures per-value decode cost of each
// compression scheme on a sorted key column.
func BenchmarkAblationCodecs(b *testing.B) {
	specs := []struct {
		name string
		sch  *schema.Schema
		attr int
	}{
		{"delta8", schema.OrdersZ(), schema.OOrderKey},
		{"for16", schema.OrdersZFOR(), schema.OOrderKey},
		{"pack14", schema.OrdersZ(), schema.OOrderDate},
		{"raw32", schema.Orders(), schema.OOrderKey},
	}
	for _, sp := range specs {
		sp := sp
		b.Run(sp.name, func(b *testing.B) {
			dir := b.TempDir()
			tbl, err := store.LoadSynthetic(dir, sp.sch, store.Column, 4096, 1, 50_000)
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(50_000 * 4)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s, err := scan.NewColScanner(scan.ColConfig{
					Schema:   tbl.Schema,
					PageSize: tbl.PageSize,
					Readers:  map[int]aio.Reader{sp.attr: benchOpen(b, tbl.ColumnPath(sp.attr))},
					Dicts:    tbl.Dicts,
					Proj:     []int{sp.attr},
				})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := exec.Drain(s); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// BenchmarkAblationPAX compares the PAX scanner against row and column on
// the modelled experiment cell (I/O equal to row, CPU close to column).
func BenchmarkAblationPAX(b *testing.B) {
	q := harness.Query{AttrsSelected: 2, Selectivity: 0.10}
	b.Run("row", func(b *testing.B) { runCell(b, harness.RowSystem, schema.Lineitem(), q, harness.RunOpts{}) })
	b.Run("pax", func(b *testing.B) { runCell(b, harness.PAXSystem, schema.Lineitem(), q, harness.RunOpts{}) })
	b.Run("column", func(b *testing.B) { runCell(b, harness.ColumnSystem, schema.Lineitem(), q, harness.RunOpts{}) })
}

// BenchmarkSharedScan measures scan sharing: N aggregate queries answered
// from one pass versus N separate passes.
func BenchmarkSharedScan(b *testing.B) {
	_, col := benchTables(b)
	th, err := tpch.Threshold(col.Schema, 0.10)
	if err != nil {
		b.Fatal(err)
	}
	mkQueries := func() []share.Query {
		return []share.Query{
			{Proj: []int{0, 1}, Preds: []exec.Predicate{exec.IntPred(0, exec.Lt, th)},
				Aggs: []exec.AggSpec{{Func: exec.Count}}},
			{Proj: []int{2}, Aggs: []exec.AggSpec{{Func: exec.Min, Attr: 0}, {Func: exec.Max, Attr: 0}}},
			// Indexes refer to the shared stream's output schema
			// (O_ORDERDATE, O_ORDERKEY, O_CUSTKEY, O_ORDERSTATUS,
			// O_TOTALPRICE).
			{Proj: []int{3, 4}, GroupBy: []int{0},
				Aggs: []exec.AggSpec{{Func: exec.Count}, {Func: exec.Avg, Attr: 1}}},
		}
	}
	sharedSrc := func() exec.Operator {
		s, err := scan.NewColScanner(benchColConfig(b, col, []int{0, 1, 2, 3, 5}, 1.0))
		if err != nil {
			b.Fatal(err)
		}
		return s
	}
	b.Run("shared-3-queries", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := share.Run(sharedSrc(), mkQueries(), nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("separate-3-queries", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, q := range mkQueries() {
				if _, err := share.Run(sharedSrc(), []share.Query{q}, nil); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkParallelScan measures the real wall-clock effect of the
// partitioned scan on this machine.
func BenchmarkParallelScan(b *testing.B) {
	dir, err := os.MkdirTemp("", "readopt-par-")
	if err != nil {
		b.Fatal(err)
	}
	tbl, err := GenerateTPCH(filepath.Join(dir, "t"), Orders(), ColumnLayout, 400_000, 1, LoadOptions{})
	if err != nil {
		b.Fatal(err)
	}
	th, err := tbl.SelectivityThreshold(0.10)
	if err != nil {
		b.Fatal(err)
	}
	q := Query{
		GroupBy: []string{"O_ORDERSTATUS"},
		Aggs:    []Agg{{Func: "count"}, {Func: "avg", Column: "O_TOTALPRICE"}},
		Where:   []Cond{{Column: "O_ORDERDATE", Op: "<", Value: th}},
	}
	for _, dop := range []int{1, 2, 4} {
		dop := dop
		b.Run("dop-"+itoa(dop), func(b *testing.B) {
			b.SetBytes(400_000 * 12)
			for i := 0; i < b.N; i++ {
				rows, err := tbl.QueryParallel(q, dop)
				if err != nil {
					b.Fatal(err)
				}
				for rows.Next() {
				}
				if err := rows.Err(); err != nil {
					b.Fatal(err)
				}
				rows.Close()
			}
		})
	}
}

// BenchmarkAblationTopN compares the fused bounded-heap top-n against a
// full sort followed by a limit.
func BenchmarkAblationTopN(b *testing.B) {
	_, col := benchTables(b)
	keys := []exec.SortKey{{Attr: 1, Desc: true}}
	mkScan := func() exec.Operator {
		s, err := scan.NewColScanner(benchColConfig(b, col, []int{0, 5}, 1.0))
		if err != nil {
			b.Fatal(err)
		}
		return s
	}
	b.Run("topn-10", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			op, err := exec.NewTopN(mkScan(), keys, 10, nil)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := exec.Drain(op); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("sort-limit-10", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			srt, err := exec.NewSort(mkScan(), keys, nil)
			if err != nil {
				b.Fatal(err)
			}
			op, err := exec.NewLimit(srt, 10)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := exec.Drain(op); err != nil {
				b.Fatal(err)
			}
		}
	})
}
