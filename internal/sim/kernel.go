// Package sim is a deterministic discrete-event simulation kernel. It
// exists because the paper's evaluation hinges on timing phenomena of 2006
// hardware — disk seeks, prefetch depth, overlap of CPU with asynchronous
// I/O, competition between concurrent scans — that cannot be observed
// directly on this machine. The kernel runs simulation processes written
// as ordinary Go functions; exactly one process executes at a time and
// processes are resumed in virtual-time order, so runs are deterministic
// and race-free by construction.
//
// A process advances its own virtual clock with Advance (modelling CPU
// work), blocks until an absolute virtual time with WaitUntil (modelling
// waiting for an I/O completion computed by a resource model such as
// simdisk), and observes the clock with Now.
package sim

import (
	"container/heap"
	"fmt"
	"time"
)

// Time is a virtual timestamp in nanoseconds since the start of the run.
type Time int64

// Duration converts a standard duration to simulation time units.
func Duration(d time.Duration) Time { return Time(d.Nanoseconds()) }

// Seconds renders a virtual timestamp in seconds.
func (t Time) Seconds() float64 { return float64(t) / 1e9 }

type event struct {
	at  Time
	seq int64
	p   *Proc
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// Kernel schedules simulation processes in virtual-time order.
type Kernel struct {
	now    Time
	seq    int64
	events eventHeap
	yield  chan struct{}
	active int
}

// NewKernel returns an empty kernel at virtual time zero.
func NewKernel() *Kernel {
	return &Kernel{yield: make(chan struct{})}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Proc is one simulation process. Its methods must only be called from
// within the function passed to Spawn, while that process is running.
type Proc struct {
	k      *Kernel
	name   string
	now    Time
	resume chan struct{}
}

// Name returns the process name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Now returns the process's virtual clock.
func (p *Proc) Now() Time { return p.now }

// Advance moves the process clock forward by d, modelling work that
// occupies the process (e.g. CPU time) without blocking on a resource.
func (p *Proc) Advance(d Time) {
	if d < 0 {
		panic(fmt.Sprintf("sim: process %s advancing by negative duration %d", p.name, d))
	}
	p.WaitUntil(p.now + d)
}

// WaitUntil blocks the process until virtual time t. Waiting for a past
// time is a no-op that still yields to the scheduler.
func (p *Proc) WaitUntil(t Time) {
	if t < p.now {
		t = p.now
	}
	p.k.schedule(t, p)
	p.k.yield <- struct{}{}
	<-p.resume
	p.now = t
}

func (k *Kernel) schedule(t Time, p *Proc) {
	k.seq++
	heap.Push(&k.events, event{at: t, seq: k.seq, p: p})
}

// Spawn registers a process starting at virtual time `at`. The function
// runs when the kernel's clock reaches that time. Spawn may be called
// before Run or from a running process.
func (k *Kernel) Spawn(name string, at Time, fn func(p *Proc)) {
	p := &Proc{k: k, name: name, now: at, resume: make(chan struct{})}
	k.active++
	go func() {
		<-p.resume
		fn(p)
		k.active--
		k.yield <- struct{}{}
	}()
	k.schedule(at, p)
}

// Run executes all processes to completion and returns the final virtual
// time. It panics on deadlock (a process that blocks forever cannot occur
// with WaitUntil, so an empty event queue with live processes indicates a
// kernel bug).
func (k *Kernel) Run() Time {
	for k.events.Len() > 0 {
		e := heap.Pop(&k.events).(event)
		if e.at < k.now {
			panic("sim: time went backwards")
		}
		k.now = e.at
		e.p.resume <- struct{}{}
		<-k.yield
	}
	if k.active != 0 {
		panic(fmt.Sprintf("sim: %d processes still active with no pending events", k.active))
	}
	return k.now
}
